"""The hand-written VAX instruction table (Figure 3).

The generic cluster/variant machinery and the idiom walk now live in
:mod:`repro.targets.insttable` (they are machine-independent: the R32
table reuses them unchanged); this module keeps the VAX-specific table
and re-exports the machinery for existing importers.

Figure 3's long-addition entry reads, in this representation::

    Cluster("add.l", [
        Variant("addl3", 3, binding="ADD", commutes=True,  range_idiom=None),
        Variant("addl2", 2, binding=None,  commutes=True,  range_idiom="one"),
        Variant("incl",  1, binding=None,  commutes=False, range_idiom=None),
    ])
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..targets.insttable import (
    RANGE_IDIOMS, Cluster, RangeFn, Selection, Variant, range_idiom,
    select_variant,
)

__all__ = [
    "RANGE_IDIOMS", "RangeFn", "range_idiom", "Variant", "Cluster",
    "Selection", "select_variant", "build_instruction_table",
    "INSTRUCTION_TABLE", "figure3_entry",
]

def _arith(name: str, mnemonic_base: str, suffix: str,
           commutes: bool, inc: Optional[str], dec: Optional[str]) -> Cluster:
    """Build the standard three-row arithmetic cluster."""
    rows: List[Variant] = [
        Variant(f"{mnemonic_base}{suffix}3", 3, binding=name.upper(),
                commutes=commutes),
    ]
    one_op = inc or dec
    rows.append(
        Variant(f"{mnemonic_base}{suffix}2", 2, commutes=commutes,
                range_idiom="one" if one_op else None)
    )
    if one_op:
        rows.append(Variant(f"{one_op}{suffix}", 1))
    return Cluster(f"{name}.{suffix}", tuple(rows))


def build_instruction_table() -> Dict[str, Cluster]:
    """All clusters, keyed by ``name.suffix`` (e.g. ``add.l``)."""
    table: Dict[str, Cluster] = {}

    def put(cluster: Cluster) -> None:
        table[cluster.name] = cluster

    for suffix in ("b", "w", "l"):
        put(_arith("add", "add", suffix, commutes=True, inc="inc", dec=None))
        put(_arith("sub", "sub", suffix, commutes=False, inc=None, dec="dec"))
        put(Cluster(f"mul.{suffix}", (
            Variant(f"mul{suffix}3", 3, binding="MUL", commutes=True),
            Variant(f"mul{suffix}2", 2, commutes=True),
        )))
        put(Cluster(f"div.{suffix}", (
            Variant(f"div{suffix}3", 3, binding="DIV", commutes=False),
            Variant(f"div{suffix}2", 2),
        )))
        put(Cluster(f"bis.{suffix}", (
            Variant(f"bis{suffix}3", 3, binding="OR", commutes=True),
            Variant(f"bis{suffix}2", 2, commutes=True),
        )))
        put(Cluster(f"xor.{suffix}", (
            Variant(f"xor{suffix}3", 3, binding="XOR", commutes=True),
            Variant(f"xor{suffix}2", 2, commutes=True),
        )))
        # C's & is a pseudo-instruction on the VAX (bic of the complement);
        # the idiom layer expands it.  See semantics._emit_and.
        put(Cluster(f"and.{suffix}", (
            Variant(f"and{suffix}3", 3, binding="AND", commutes=True),
            Variant(f"and{suffix}2", 2, commutes=True),
        )))
        put(Cluster(f"mov.{suffix}", (
            Variant(f"mov{suffix}", 2, range_idiom="zero"),
            Variant(f"clr{suffix}", 1),
        )))
        put(Cluster(f"cmp.{suffix}", (
            Variant(f"cmp{suffix}", 2, range_idiom="zero"),
            Variant(f"tst{suffix}", 1),
        )))
        put(Cluster(f"mneg.{suffix}", (Variant(f"mneg{suffix}", 2),)))
        put(Cluster(f"mcom.{suffix}", (Variant(f"mcom{suffix}", 2),)))

    for suffix in ("f", "d"):
        put(_arith("add", "add", suffix, commutes=True, inc=None, dec=None))
        put(_arith("sub", "sub", suffix, commutes=False, inc=None, dec=None))
        put(Cluster(f"mul.{suffix}", (
            Variant(f"mul{suffix}3", 3, binding="MUL", commutes=True),
            Variant(f"mul{suffix}2", 2, commutes=True),
        )))
        put(Cluster(f"div.{suffix}", (
            Variant(f"div{suffix}3", 3, binding="DIV", commutes=False),
            Variant(f"div{suffix}2", 2),
        )))
        put(Cluster(f"mov.{suffix}", (
            Variant(f"mov{suffix}", 2, range_idiom="zero"),
            Variant(f"clr{suffix}", 1),
        )))
        put(Cluster(f"cmp.{suffix}", (
            Variant(f"cmp{suffix}", 2, range_idiom="zero"),
            Variant(f"tst{suffix}", 1),
        )))
        put(Cluster(f"mneg.{suffix}", (Variant(f"mneg{suffix}", 2),)))

    # Quad-word moves (no quad arithmetic in the 11/780's integer unit).
    put(Cluster("mov.q", (
        Variant("movq", 2, range_idiom="zero"),
        Variant("clrq", 1),
    )))

    # Shifts: ashl count,src,dst (always long).
    put(Cluster("ashl", (Variant("ashl", 3),)))
    put(Cluster("ashq", (Variant("ashq", 3),)))

    return table


#: Module-level singleton table; clusters are immutable.
INSTRUCTION_TABLE = build_instruction_table()


def figure3_entry() -> Cluster:
    """The exact Figure-3 cluster, for the F3 experiment."""
    return INSTRUCTION_TABLE["add.l"]
