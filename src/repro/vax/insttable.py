"""The hand-written instruction table (Figure 3) and idiom recognition.

"Instruction selection is driven by the selected syntactic pattern, and by
the information stored in a hand written instruction table.  Each entry in
the instruction table distinguishes among different instructions having
the same syntactic description" (section 5.3.1).

A :class:`Cluster` is one table entry: an ordered list of
:class:`Variant` rows, from the most general (three-operand) down to the
cheapest (one-operand).  Walking the rows applies the two idiom classes of
section 5.3.2 in the required order: **binding idioms first** (does a
source match the destination? then drop to the two-operand form), **range
idioms second** (is the remaining source a constant in the row's range?
then drop to the one-operand form).

Figure 3's long-addition entry reads, in this representation::

    Cluster("add.l", [
        Variant("addl3", 3, binding="ADD", commutes=True,  range_idiom=None),
        Variant("addl2", 2, binding=None,  commutes=True,  range_idiom="one"),
        Variant("incl",  1, binding=None,  commutes=False, range_idiom=None),
    ])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..matcher.descriptors import Descriptor

#: A range idiom: does *descriptor* (the remaining source) satisfy the
#: constant range that admits the next, cheaper variant?
RangeFn = Callable[[Descriptor], bool]

RANGE_IDIOMS: Dict[str, RangeFn] = {}


def range_idiom(name: str) -> Callable[[RangeFn], RangeFn]:
    """Register a named range idiom, "implemented by functions written in
    'C'; these functions follow a relatively straightforward coding
    style" — ours follow an equally straightforward Python style."""

    def register(fn: RangeFn) -> RangeFn:
        RANGE_IDIOMS[name] = fn
        return fn

    return register


@range_idiom("one")
def _is_one(descriptor: Descriptor) -> bool:
    return descriptor.is_constant and descriptor.value == 1


@range_idiom("zero")
def _is_zero(descriptor: Descriptor) -> bool:
    return descriptor.is_constant and descriptor.value == 0


@range_idiom("minus_one")
def _is_minus_one(descriptor: Descriptor) -> bool:
    return descriptor.is_constant and descriptor.value == -1


@range_idiom("pow2")
def _is_power_of_two(descriptor: Descriptor) -> bool:
    value = descriptor.value
    return (
        descriptor.is_constant
        and isinstance(value, int)
        and value > 1
        and value & (value - 1) == 0
    )


@dataclass(frozen=True)
class Variant:
    """One row of a cluster: Figure 3's columns.

    ``binding`` is the binding-idiom tag (the paper stores an operator
    name like ``ADD``; any non-None value enables the dest/source match
    check).  ``commutes`` is the figure's "can the source operands be
    swapped" column; it governs *which* source may bind.  ``range_idiom``
    names the check that admits the **next** row.
    """

    mnemonic: str
    operands: int
    binding: Optional[str] = None
    commutes: bool = False
    range_idiom: Optional[str] = None

    def range_matches(self, descriptor: Descriptor) -> bool:
        if self.range_idiom is None:
            return False
        return RANGE_IDIOMS[self.range_idiom](descriptor)


@dataclass(frozen=True)
class Cluster:
    """One instruction-table entry: the variants for one generic operator
    and operand type, ordered general-to-cheap."""

    name: str
    variants: Tuple[Variant, ...]

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError(f"cluster {self.name!r} has no variants")


@dataclass(frozen=True)
class Selection:
    """The outcome of walking a cluster: the instruction to emit."""

    mnemonic: str
    operands: Tuple[Descriptor, ...]  # in assembler order (sources..., dest)
    variant: Variant
    idioms_applied: Tuple[str, ...]   # e.g. ("binding", "range:one")


def select_variant(
    cluster: Cluster,
    dest: Descriptor,
    sources: Sequence[Descriptor],
) -> Selection:
    """Figure 3's walk: binding idiom, then range idiom.

    For the paper's ``a = 17 + b`` example the three-operand row binds
    (the second source *b* matches the destination... when it does), the
    two-operand row's range idiom then asks whether the other source is
    the literal one, and ``addl2``/``incl`` falls out accordingly.
    """
    applied: List[str] = []
    row_index = 0
    operands = list(sources)

    row = cluster.variants[row_index]
    if row.binding is not None and row_index + 1 < len(cluster.variants):
        bound = _bind(dest, operands, row.commutes)
        if bound is not None:
            operands = [bound]
            row_index += 1
            applied.append("binding")
            row = cluster.variants[row_index]

    if (
        row.range_idiom is not None
        and row_index + 1 < len(cluster.variants)
        and len(operands) == 1
        and row.range_matches(operands[0])
    ):
        applied.append(f"range:{row.range_idiom}")
        operands = []
        row_index += 1
        row = cluster.variants[row_index]

    return Selection(
        mnemonic=row.mnemonic,
        operands=tuple(operands) + (dest,),
        variant=row,
        idioms_applied=tuple(applied),
    )


def _bind(
    dest: Descriptor, sources: List[Descriptor], commutes: bool
) -> Optional[Descriptor]:
    """Binding idiom: return the *other* source if one source matches the
    destination; "either source will do" only when the row commutes."""
    if len(sources) != 2:
        return None
    first, second = sources
    if first.same_location(dest):
        return second
    if commutes and second.same_location(dest):
        return first
    return None


# ---------------------------------------------------------------------------
# The VAX instruction table.
# ---------------------------------------------------------------------------

def _arith(name: str, mnemonic_base: str, suffix: str,
           commutes: bool, inc: Optional[str], dec: Optional[str]) -> Cluster:
    """Build the standard three-row arithmetic cluster."""
    rows: List[Variant] = [
        Variant(f"{mnemonic_base}{suffix}3", 3, binding=name.upper(),
                commutes=commutes),
    ]
    one_op = inc or dec
    rows.append(
        Variant(f"{mnemonic_base}{suffix}2", 2, commutes=commutes,
                range_idiom="one" if one_op else None)
    )
    if one_op:
        rows.append(Variant(f"{one_op}{suffix}", 1))
    return Cluster(f"{name}.{suffix}", tuple(rows))


def build_instruction_table() -> Dict[str, Cluster]:
    """All clusters, keyed by ``name.suffix`` (e.g. ``add.l``)."""
    table: Dict[str, Cluster] = {}

    def put(cluster: Cluster) -> None:
        table[cluster.name] = cluster

    for suffix in ("b", "w", "l"):
        put(_arith("add", "add", suffix, commutes=True, inc="inc", dec=None))
        put(_arith("sub", "sub", suffix, commutes=False, inc=None, dec="dec"))
        put(Cluster(f"mul.{suffix}", (
            Variant(f"mul{suffix}3", 3, binding="MUL", commutes=True),
            Variant(f"mul{suffix}2", 2, commutes=True),
        )))
        put(Cluster(f"div.{suffix}", (
            Variant(f"div{suffix}3", 3, binding="DIV", commutes=False),
            Variant(f"div{suffix}2", 2),
        )))
        put(Cluster(f"bis.{suffix}", (
            Variant(f"bis{suffix}3", 3, binding="OR", commutes=True),
            Variant(f"bis{suffix}2", 2, commutes=True),
        )))
        put(Cluster(f"xor.{suffix}", (
            Variant(f"xor{suffix}3", 3, binding="XOR", commutes=True),
            Variant(f"xor{suffix}2", 2, commutes=True),
        )))
        # C's & is a pseudo-instruction on the VAX (bic of the complement);
        # the idiom layer expands it.  See semantics._emit_and.
        put(Cluster(f"and.{suffix}", (
            Variant(f"and{suffix}3", 3, binding="AND", commutes=True),
            Variant(f"and{suffix}2", 2, commutes=True),
        )))
        put(Cluster(f"mov.{suffix}", (
            Variant(f"mov{suffix}", 2, range_idiom="zero"),
            Variant(f"clr{suffix}", 1),
        )))
        put(Cluster(f"cmp.{suffix}", (
            Variant(f"cmp{suffix}", 2, range_idiom="zero"),
            Variant(f"tst{suffix}", 1),
        )))
        put(Cluster(f"mneg.{suffix}", (Variant(f"mneg{suffix}", 2),)))
        put(Cluster(f"mcom.{suffix}", (Variant(f"mcom{suffix}", 2),)))

    for suffix in ("f", "d"):
        put(_arith("add", "add", suffix, commutes=True, inc=None, dec=None))
        put(_arith("sub", "sub", suffix, commutes=False, inc=None, dec=None))
        put(Cluster(f"mul.{suffix}", (
            Variant(f"mul{suffix}3", 3, binding="MUL", commutes=True),
            Variant(f"mul{suffix}2", 2, commutes=True),
        )))
        put(Cluster(f"div.{suffix}", (
            Variant(f"div{suffix}3", 3, binding="DIV", commutes=False),
            Variant(f"div{suffix}2", 2),
        )))
        put(Cluster(f"mov.{suffix}", (
            Variant(f"mov{suffix}", 2, range_idiom="zero"),
            Variant(f"clr{suffix}", 1),
        )))
        put(Cluster(f"cmp.{suffix}", (
            Variant(f"cmp{suffix}", 2, range_idiom="zero"),
            Variant(f"tst{suffix}", 1),
        )))
        put(Cluster(f"mneg.{suffix}", (Variant(f"mneg{suffix}", 2),)))

    # Quad-word moves (no quad arithmetic in the 11/780's integer unit).
    put(Cluster("mov.q", (
        Variant("movq", 2, range_idiom="zero"),
        Variant("clrq", 1),
    )))

    # Shifts: ashl count,src,dst (always long).
    put(Cluster("ashl", (Variant("ashl", 3),)))
    put(Cluster("ashq", (Variant("ashq", 3),)))

    return table


#: Module-level singleton table; clusters are immutable.
INSTRUCTION_TABLE = build_instruction_table()


def figure3_entry() -> Cluster:
    """The exact Figure-3 cluster, for the F3 experiment."""
    return INSTRUCTION_TABLE["add.l"]
