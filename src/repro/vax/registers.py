"""Backward-compatible import surface for the register manager.

The manager itself moved to :mod:`repro.targets.registers` when the
second target landed — it was always machine-independent apart from the
spill/reload mnemonics, which now come from the
:class:`~repro.targets.base.Machine` formats.  Existing importers keep
working through this shim.
"""

from __future__ import annotations

from ..targets.registers import (
    EmitFn, RegisterManager, RegisterPressureError, TempFn,
)

__all__ = ["EmitFn", "TempFn", "RegisterManager", "RegisterPressureError"]
