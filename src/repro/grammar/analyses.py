"""Classic grammar analyses needed by the table constructor.

Machine-description grammars have no empty productions (every pattern
matches at least one input symbol), so NULLABLE is trivially empty; FIRST
and FOLLOW reduce to the simple fixpoints below.  The chain-production
analyses implement the section-3.2 guarantee that "the pattern matcher
will not get into a looping configuration, where non-terminal chain rules
are cyclically reduced".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from .grammar import Grammar
from .symbols import END, is_nonterminal, is_terminal


def first_sets(grammar: Grammar) -> Dict[str, FrozenSet[str]]:
    """FIRST sets for every symbol (terminals map to themselves)."""
    first: Dict[str, Set[str]] = {t: {t} for t in grammar.terminals}
    first[END] = {END}
    for nt in grammar.nonterminals:
        first.setdefault(nt, set())

    changed = True
    while changed:
        changed = False
        for production in grammar:
            head = production.rhs[0]
            target = first[production.lhs]
            source = first.get(head)
            if source is None:
                # Undefined non-terminal: Grammar.check() reports these;
                # keep the analysis total regardless.
                continue
            before = len(target)
            target |= source
            if len(target) != before:
                changed = True
    return {symbol: frozenset(values) for symbol, values in first.items()}


def follow_sets(grammar: Grammar) -> Dict[str, FrozenSet[str]]:
    """FOLLOW sets for every non-terminal (SLR(1) reduce lookaheads)."""
    first = first_sets(grammar)
    follow: Dict[str, Set[str]] = {nt: set() for nt in grammar.nonterminals}
    follow[grammar.start].add(END)

    changed = True
    while changed:
        changed = False
        for production in grammar:
            rhs = production.rhs
            for position, symbol in enumerate(rhs):
                if not is_nonterminal(symbol):
                    continue
                target = follow[symbol]
                before = len(target)
                if position + 1 < len(rhs):
                    follower = rhs[position + 1]
                    target |= first.get(follower, frozenset())
                else:
                    target |= follow[production.lhs]
                if len(target) != before:
                    changed = True
    return {symbol: frozenset(values) for symbol, values in follow.items()}


def chain_graph(grammar: Grammar) -> Dict[str, Set[str]]:
    """Directed graph: LHS -> {RHS non-terminal} for chain productions."""
    graph: Dict[str, Set[str]] = {}
    for production in grammar.chain_productions():
        graph.setdefault(production.lhs, set()).add(production.rhs[0])
    return graph


def find_chain_cycles(grammar: Grammar) -> List[List[str]]:
    """All elementary cycles among chain productions.

    A cycle such as ``a <- b`` / ``b <- a`` would let the pattern matcher
    reduce forever; the table constructor refuses such grammars.
    """
    graph = chain_graph(grammar)
    cycles: List[List[str]] = []
    seen_cycles: Set[FrozenSet[str]] = set()

    def visit(node: str, stack: List[str], on_stack: Set[str]) -> None:
        for successor in sorted(graph.get(node, ())):
            if successor in on_stack:
                cycle = stack[stack.index(successor):] + [successor]
                key = frozenset(cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(cycle)
                continue
            stack.append(successor)
            on_stack.add(successor)
            visit(successor, stack, on_stack)
            on_stack.discard(successor)
            stack.pop()

    for origin in sorted(graph):
        visit(origin, [origin], {origin})
    return cycles


def unproductive_nonterminals(grammar: Grammar) -> Set[str]:
    """Non-terminals that derive no terminal string (dead patterns)."""
    productive: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for production in grammar:
            if production.lhs in productive:
                continue
            if all(
                is_terminal(s) or s in productive for s in production.rhs
            ):
                productive.add(production.lhs)
                changed = True
    return grammar.nonterminals - productive


def chain_depth(grammar: Grammar) -> Dict[str, int]:
    """Longest chain-reduction path out of each non-terminal.

    Section 8 attributes the matcher's parse-heavy profile to "the large
    number of chain productions in the grammar"; this measures how deep
    those chains go.  Cycles must be absent (see find_chain_cycles).
    """
    graph = chain_graph(grammar)
    depth: Dict[str, int] = {}

    def visit(node: str, active: Set[str]) -> int:
        if node in depth:
            return depth[node]
        if node in active:
            raise ValueError(f"chain cycle through {node!r}")
        active.add(node)
        successors = graph.get(node, ())
        value = 0 if not successors else 1 + max(visit(s, active) for s in successors)
        active.discard(node)
        depth[node] = value
        return value

    for nt in grammar.nonterminals:
        visit(nt, set())
    return depth
