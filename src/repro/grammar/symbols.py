"""Grammar symbols and their spelling conventions.

We adopt the paper's convention directly (section 3.1): *"all terminal
symbols start with an upper case letter; non-terminal symbols begin with
lower case letters."*  Symbols are plain strings — table construction over
a thousand-production grammar touches millions of symbols, and interned
strings are the cheapest representation Python offers.

A *typed* symbol is ``base.suffix`` (``reg.l``, ``Plus.b``); the suffix is
one of the machine-type characters from :mod:`repro.ir.types`.  Untyped
symbols (``One``, ``Label``, ``stmt``) have no dot.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..ir.types import MachineType

#: The end-of-input marker used by the table constructor and matcher.
END = "$end"

#: The augmented start symbol.
START = "$accept"


def is_terminal(symbol: str) -> bool:
    """True when *symbol* is a terminal (starts with an upper-case letter).

    The markers ``$end``/``$accept`` are classified as terminal and
    non-terminal respectively, which is what the constructor needs.
    """
    if symbol == END:
        return True
    if symbol == START:
        return False
    return symbol[0].isupper()


def is_nonterminal(symbol: str) -> bool:
    return not is_terminal(symbol)


def typed(base: str, ty: MachineType) -> str:
    """Attach a machine-type suffix: ``typed("reg", LONG) == "reg.l"``."""
    return f"{base}.{ty.suffix}"


def split_typed(symbol: str) -> Tuple[str, Optional[str]]:
    """Split ``"reg.l"`` into ``("reg", "l")``; untyped gives ``(sym, None)``."""
    if "." in symbol:
        base, suffix = symbol.rsplit(".", 1)
        return base, suffix
    return symbol, None


def base_name(symbol: str) -> str:
    """The symbol without its type suffix."""
    return split_typed(symbol)[0]


def type_suffix(symbol: str) -> Optional[str]:
    """The type-suffix character, or None for untyped symbols."""
    return split_typed(symbol)[1]
