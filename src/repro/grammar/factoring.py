"""Factoring diagnostics — toward the paper's "factoring theory".

A flat VAX grammar would need millions of productions (section 4), so the
description is *factored*: complete subtrees become phrase non-terminals
and operator symbols are grouped into classes.  Section 6.2.1 shows how
easily this is overdone: grouping ``Plus`` into a ``binop`` class while
``Plus`` also occurs as a *secondary* operation inside addressing modes
creates shift/reduce conflicts that the shift-preference then resolves
*wrongly*.  The authors write they "are developing a factoring theory to
help us find and repair these cases automatically" — this module is our
version of that tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .grammar import Grammar
from .production import Production
from .symbols import is_terminal


@dataclass(frozen=True)
class OverfactoringWarning:
    """A terminal grouped into an operator class that also occurs as a
    secondary operation elsewhere in the grammar."""

    class_nonterminal: str
    terminal: str
    class_production: Production
    conflicting_production: Production

    def __str__(self) -> str:
        return (
            f"terminal {self.terminal!r} is grouped into class "
            f"{self.class_nonterminal!r} (production {self.class_production.index}) "
            f"but also appears inside production "
            f"{self.conflicting_production.index}: {self.conflicting_production}; "
            "a shift decision there would prematurely commit against the class"
        )


def operator_classes(grammar: Grammar) -> Dict[str, Set[str]]:
    """Map each operator-class non-terminal to the terminals it groups.

    An operator class is defined by productions like ``binop <- Or.l``
    whose RHS is a single terminal.
    """
    classes: Dict[str, Set[str]] = {}
    for production in grammar:
        if production.is_operator_class:
            classes.setdefault(production.lhs, set()).add(production.rhs[0])
    return classes


def secondary_occurrences(grammar: Grammar) -> Dict[str, List[Tuple[Production, int]]]:
    """Where each terminal occurs inside a multi-symbol pattern.

    Position 0 of a pattern is the *primary* operation; any later position
    is secondary (it belongs to an operand subtree such as an addressing
    mode).  Both matter for overfactoring, but secondary occurrences are
    the dangerous ones.
    """
    occurrences: Dict[str, List[Tuple[Production, int]]] = {}
    for production in grammar:
        if len(production.rhs) < 2:
            continue
        for position, symbol in enumerate(production.rhs):
            if is_terminal(symbol):
                occurrences.setdefault(symbol, []).append((production, position))
    return occurrences


def find_overfactoring(grammar: Grammar) -> List[OverfactoringWarning]:
    """Detect the section-6.2.1 overfactoring pattern.

    For every terminal ``t`` grouped into a class ``c``, any occurrence of
    ``t`` inside a longer pattern means some state can contain both
    ``[... t . ...]`` (wanting a shift to continue the long pattern) and
    ``[c <- t .]`` (wanting a reduce to the class): the shift-preference
    then commits prematurely against the class, which is exactly the
    ``displ <- Plus Const reg`` vs ``binop <- Plus`` conflict of section
    6.2.1.  We report each such pair.
    """
    warnings: List[OverfactoringWarning] = []
    classes = operator_classes(grammar)
    occurrences = secondary_occurrences(grammar)
    class_productions = {
        (p.lhs, p.rhs[0]): p for p in grammar if p.is_operator_class
    }

    for class_nt, terminals in sorted(classes.items()):
        for terminal in sorted(terminals):
            for production, position in occurrences.get(terminal, ()):
                warnings.append(
                    OverfactoringWarning(
                        class_nonterminal=class_nt,
                        terminal=terminal,
                        class_production=class_productions[(class_nt, terminal)],
                        conflicting_production=production,
                    )
                )
    return warnings


@dataclass(frozen=True)
class FactoringReport:
    """Summary of how a grammar is factored."""

    operator_classes: Dict[str, Set[str]]
    phrase_nonterminals: Set[str]
    overfactoring: List[OverfactoringWarning]

    def __str__(self) -> str:
        lines = [
            f"operator classes: {len(self.operator_classes)}",
            f"phrase non-terminals: {len(self.phrase_nonterminals)}",
            f"overfactoring warnings: {len(self.overfactoring)}",
        ]
        lines.extend(f"  - {warning}" for warning in self.overfactoring)
        return "\n".join(lines)


def analyze_factoring(grammar: Grammar) -> FactoringReport:
    """Full factoring report for a grammar."""
    classes = operator_classes(grammar)
    phrase = {
        production.lhs
        for production in grammar
        if len(production.rhs) > 1 and production.lhs != grammar.start
    }
    return FactoringReport(
        operator_classes=classes,
        phrase_nonterminals=phrase - set(classes),
        overfactoring=find_overfactoring(grammar),
    )
