"""Machine-description grammar infrastructure.

Target-machine instructions are described as attributed productions whose
right-hand sides are prefix-linearized patterns (section 3.1).  This
package holds the grammar data model, the text reader, the type-replication
macro preprocessor (section 6.4), and the factoring diagnostics.
"""

from .analyses import (
    chain_depth, chain_graph, find_chain_cycles, first_sets, follow_sets,
    unproductive_nonterminals,
)
from .factoring import (
    FactoringReport, OverfactoringWarning, analyze_factoring,
    find_overfactoring, operator_classes,
)
from .grammar import Grammar, GrammarError, GrammarStats
from .macro import (
    GenericProduction, MacroError, SCALE_TOKEN, replicate_all, substitute,
    suffixes,
)
from .production import ActionKind, Production
from .reader import GrammarSyntaxError, read_generic, read_grammar, try_parse
from .symbols import (
    END, START, base_name, is_nonterminal, is_terminal, split_typed, typed,
    type_suffix,
)

__all__ = [
    "Grammar", "GrammarError", "GrammarStats",
    "Production", "ActionKind",
    "GenericProduction", "MacroError", "SCALE_TOKEN", "substitute",
    "replicate_all", "suffixes",
    "read_grammar", "read_generic", "try_parse", "GrammarSyntaxError",
    "first_sets", "follow_sets", "chain_graph", "find_chain_cycles",
    "chain_depth", "unproductive_nonterminals",
    "analyze_factoring", "find_overfactoring", "operator_classes",
    "FactoringReport", "OverfactoringWarning",
    "END", "START", "is_terminal", "is_nonterminal", "typed", "split_typed",
    "base_name", "type_suffix",
]
