"""Type replication — the macro preprocessor of section 6.4.

Because this code generator treats data types *syntactically*, "every
symbol that can possibly have a different type attribute must be replaced
by a different symbol, one for each type".  The authors wrote *generic*
productions containing three-character macros and replicated them over the
machine types.  We implement the same mechanism with readable named macros:

``$t``
    the type-suffix character of the replication type (``b w l q f d``);
    spliced into symbol names and mnemonics: ``reg.$t``, ``"add$t3 ..."``.
``$scale(t)``
    the special-constant token that scales indexing for the replication
    type: ``One`` for bytes, ``Two`` for words, ``Four`` for longs,
    ``Eight`` for quads/doubles (section 6.3).
``$size(t)``
    the size in bytes, for templates that need it.

A :class:`GenericProduction` replicates into one concrete
:class:`Production` per type in its class.  Multi-variable generics (used
for the conversion-instruction cross product the authors "performed by
hand and introduced several errors" doing) replicate over the cartesian
product of their classes.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir.types import MachineType
from .production import ActionKind, Production

#: scale token per type-suffix character (displacement indexing, section 6.3)
SCALE_TOKEN = {"b": "One", "w": "Two", "l": "Four", "q": "Eight",
               "f": "Four", "d": "Eight"}

SIZE_OF_SUFFIX = {"b": 1, "w": 2, "l": 4, "q": 8, "f": 4, "d": 8}

# Type-variable names are alphabetic so a trailing digit stays literal:
# in "add$Y3" the variable is Y and the 3 is part of the mnemonic.
_MACRO_RE = re.compile(r"\$(?:scale\(([A-Za-z]+)\)|size\(([A-Za-z]+)\)|([A-Za-z]+))")


class MacroError(ValueError):
    """Raised for malformed generic productions."""


def substitute(text: str, bindings: Dict[str, str]) -> str:
    """Expand ``$var`` / ``$scale(var)`` / ``$size(var)`` macros in *text*."""

    def expand(match: "re.Match[str]") -> str:
        scale_var, size_var, plain_var = match.groups()
        if scale_var is not None:
            suffix = _lookup(scale_var, bindings, match.group(0))
            return SCALE_TOKEN[suffix]
        if size_var is not None:
            suffix = _lookup(size_var, bindings, match.group(0))
            return str(SIZE_OF_SUFFIX[suffix])
        return _lookup(plain_var, bindings, match.group(0))

    return _MACRO_RE.sub(expand, text)


def _lookup(var: str, bindings: Dict[str, str], original: str) -> str:
    try:
        return bindings[var]
    except KeyError:
        raise MacroError(f"unbound type variable in {original!r}") from None


@dataclass(frozen=True)
class GenericProduction:
    """A pre-replication production over one or more type variables.

    ``classes`` maps each type variable to the suffix characters it ranges
    over, e.g. ``{"t": ("b", "w", "l", "q")}`` — the paper's class ``Y``.
    """

    lhs: str
    rhs: Tuple[str, ...]
    action: ActionKind = ActionKind.GLUE
    template: Optional[str] = None
    semantic: Optional[str] = None
    cost: int = 0
    origin: str = ""
    classes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def variables(self) -> List[str]:
        found: List[str] = []
        for text in (self.lhs, *self.rhs, self.template or "", self.semantic or ""):
            for match in _MACRO_RE.finditer(text):
                var = match.group(1) or match.group(2) or match.group(3)
                if var not in found:
                    found.append(var)
        return found

    def replicate(self) -> List[Production]:
        """Expand into concrete productions, one per type combination."""
        variables = self.variables()
        for var in variables:
            if var not in self.classes:
                raise MacroError(
                    f"type variable ${var} in {self.lhs} <- "
                    f"{' '.join(self.rhs)} has no class"
                )
        if not variables:
            return [
                Production(self.lhs, self.rhs, self.action, self.template,
                           self.semantic, self.cost, self.origin)
            ]
        productions = []
        domains = [self.classes[var] for var in variables]
        for combo in itertools.product(*domains):
            bindings = dict(zip(variables, combo))
            productions.append(
                Production(
                    substitute(self.lhs, bindings),
                    tuple(substitute(s, bindings) for s in self.rhs),
                    self.action,
                    substitute(self.template, bindings) if self.template else None,
                    substitute(self.semantic, bindings) if self.semantic else None,
                    self.cost,
                    self.origin or f"generic {self.lhs} <- {' '.join(self.rhs)}",
                )
            )
        return productions


def replicate_all(
    generics: Iterable[GenericProduction],
) -> Tuple[List[Production], Dict[str, int]]:
    """Replicate a generic grammar; returns (productions, expansion counts).

    Duplicate concrete productions (same LHS and RHS) are coalesced — the
    cartesian product of conversion generics legitimately produces a few —
    keeping the first occurrence, whose action carries the semantics.
    """
    seen: Dict[Tuple[str, Tuple[str, ...]], Production] = {}
    counts: Dict[str, int] = {}
    ordered: List[Production] = []
    for generic in generics:
        expanded = generic.replicate()
        counts[f"{generic.lhs} <- {' '.join(generic.rhs)}"] = len(expanded)
        for production in expanded:
            key = (production.lhs, production.rhs)
            if key in seen:
                continue
            seen[key] = production
            ordered.append(production)
    return ordered, counts


def suffixes(types: Sequence[MachineType]) -> Tuple[str, ...]:
    """The suffix-character tuple for a type class, deduplicated in order."""
    out: List[str] = []
    for ty in types:
        if ty.suffix not in out:
            out.append(ty.suffix)
    return tuple(out)
