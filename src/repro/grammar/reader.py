"""Text format for machine-description grammars.

The CGGWS took machine descriptions as text; so do we.  The format is one
production per line::

    %start stmt
    %class Y b w l q          # a type class: variable Y ranges over b,w,l,q

    reg.$Y <- Plus.$Y rval.$Y rval.$Y :: emit "add$Y3 %1,%2,%0" @1 !add
    rval.$Y <- reg.$Y
    dx.$Y <- Plus.l plusc.l Mul.l $scale(Y) reg.l :: encap

Everything after ``::`` is the attribute list: an action keyword (``emit``,
``encap``, ``glue``), an optional quoted print template, an optional
``@cost`` integer and an optional ``!name`` naming the semantic cluster.
Lines mentioning a type variable ``$Y`` are *generic* and are replicated
over the class declared by ``%class Y ...`` (section 6.4).  ``#`` starts a
comment.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .grammar import Grammar, GrammarError
from .macro import GenericProduction, replicate_all
from .production import ActionKind, Production

_ACTIONS = {
    "emit": ActionKind.EMIT,
    "encap": ActionKind.ENCAPSULATE,
    "encapsulate": ActionKind.ENCAPSULATE,
    "glue": ActionKind.GLUE,
}

_TEMPLATE_RE = re.compile(r'"([^"]*)"')
_VAR_RE = re.compile(r"\$(?:scale\(([A-Za-z]+)\)|size\(([A-Za-z]+)\)|([A-Za-z]+))")


class GrammarSyntaxError(GrammarError):
    """Raised with a line number for malformed grammar text."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def read_generic(text: str) -> Tuple[str, List[GenericProduction]]:
    """Parse grammar text into its start symbol and generic productions."""
    start: Optional[str] = None
    classes: Dict[str, Tuple[str, ...]] = {}
    generics: List[GenericProduction] = []

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("%start"):
            parts = line.split()
            if len(parts) != 2:
                raise GrammarSyntaxError(line_number, "%start takes one symbol")
            start = parts[1]
            continue
        if line.startswith("%class"):
            parts = line.split()
            if len(parts) < 3:
                raise GrammarSyntaxError(
                    line_number, "%class takes a variable and suffixes"
                )
            classes[parts[1]] = tuple(parts[2:])
            continue
        if line.startswith("%"):
            raise GrammarSyntaxError(line_number, f"unknown directive {line!r}")
        generics.append(_parse_production(line_number, line, classes))

    if start is None:
        raise GrammarError("grammar text lacks a %start directive")
    return start, generics


def read_grammar(text: str, check: bool = True) -> Grammar:
    """Parse grammar text, replicate generics, and return the Grammar."""
    start, generics = read_generic(text)
    productions, _ = replicate_all(generics)
    grammar = Grammar(start, productions)
    if check:
        grammar.check()
    return grammar


def _parse_production(
    line_number: int, line: str, classes: Dict[str, Tuple[str, ...]]
) -> GenericProduction:
    if "<-" not in line:
        raise GrammarSyntaxError(line_number, "missing '<-'")
    head, _, tail = line.partition("<-")
    lhs = head.strip()
    if not lhs or " " in lhs:
        raise GrammarSyntaxError(line_number, f"bad LHS {lhs!r}")

    rhs_text, _, attr_text = tail.partition("::")
    rhs = tuple(rhs_text.split())
    if not rhs:
        raise GrammarSyntaxError(line_number, "empty RHS")

    action = ActionKind.GLUE
    template: Optional[str] = None
    semantic: Optional[str] = None
    cost = 0

    attr_text = attr_text.strip()
    if attr_text:
        template_match = _TEMPLATE_RE.search(attr_text)
        if template_match:
            template = template_match.group(1)
            attr_text = attr_text[: template_match.start()] + attr_text[template_match.end():]
        for word in attr_text.split():
            if word in _ACTIONS:
                action = _ACTIONS[word]
            elif word.startswith("@"):
                try:
                    cost = int(word[1:])
                except ValueError:
                    raise GrammarSyntaxError(line_number, f"bad cost {word!r}") from None
            elif word.startswith("!"):
                semantic = word[1:]
            else:
                raise GrammarSyntaxError(line_number, f"unknown attribute {word!r}")

    if action is ActionKind.EMIT and cost == 0:
        cost = 1

    used: Dict[str, Tuple[str, ...]] = {}
    for text_piece in (lhs, *rhs, template or "", semantic or ""):
        for match in _VAR_RE.finditer(text_piece):
            var = match.group(1) or match.group(2) or match.group(3)
            if var not in classes:
                raise GrammarSyntaxError(
                    line_number, f"type variable ${var} has no %class"
                )
            used[var] = classes[var]

    return GenericProduction(
        lhs=lhs, rhs=rhs, action=action, template=template,
        semantic=semantic, cost=cost, origin=f"line {line_number}",
        classes=used,
    )


def try_parse(text: str) -> Tuple[Optional[Grammar], List[str]]:
    """Parse leniently: returns (grammar-or-None, list of error strings)."""
    try:
        return read_grammar(text), []
    except GrammarError as error:
        return None, [str(error)]
