"""The machine-description grammar container.

A :class:`Grammar` owns an ordered list of :class:`Production` objects plus
the sentential start symbol.  It offers the derived views the table
constructor and the diagnostics need: terminal/non-terminal inventories,
productions grouped by LHS, chain-production structure, and the summary
statistics reported in section 8 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from .production import ActionKind, Production
from .symbols import END, START, is_nonterminal, is_terminal


class GrammarError(ValueError):
    """Raised for structurally invalid machine descriptions."""


@dataclass(frozen=True)
class GrammarStats:
    """The section-8 statistics row for one grammar."""

    productions: int
    terminals: int
    nonterminals: int
    chain_productions: int
    emitting: int
    encapsulating: int
    glue: int

    def as_row(self) -> Dict[str, int]:
        return {
            "productions": self.productions,
            "terminals": self.terminals,
            "nonterminals": self.nonterminals,
            "chain productions": self.chain_productions,
            "emitting": self.emitting,
            "encapsulating": self.encapsulating,
            "glue": self.glue,
        }


class Grammar:
    """An attributed machine-description grammar.

    Productions are numbered densely in insertion order; the numbering is
    the identity the parse tables and semantic routines use, mirroring the
    paper's hand-assigned production numbers.
    """

    def __init__(self, start: str, productions: Iterable[Production] = ()) -> None:
        if not is_nonterminal(start):
            raise GrammarError(f"start symbol {start!r} must be a non-terminal")
        self.start = start
        self.productions: List[Production] = []
        self._by_lhs: Dict[str, List[Production]] = {}
        for production in productions:
            self.add(production)

    # ---------------------------------------------------------- building
    def add(self, production: Production) -> Production:
        """Append a production, assigning its index.  Exact duplicates
        (same LHS and RHS) are rejected — they would create unresolvable
        reduce/reduce ties that carry no information."""
        for existing in self._by_lhs.get(production.lhs, ()):
            if existing.rhs == production.rhs:
                raise GrammarError(f"duplicate production: {production}")
        numbered = production.with_index(len(self.productions))
        self.productions.append(numbered)
        self._by_lhs.setdefault(numbered.lhs, []).append(numbered)
        return numbered

    def extend(self, productions: Iterable[Production]) -> None:
        for production in productions:
            self.add(production)

    # ------------------------------------------------------------- views
    def __len__(self) -> int:
        return len(self.productions)

    def __iter__(self) -> Iterator[Production]:
        return iter(self.productions)

    def __getitem__(self, index: int) -> Production:
        return self.productions[index]

    def by_lhs(self, lhs: str) -> Sequence[Production]:
        return tuple(self._by_lhs.get(lhs, ()))

    @property
    def nonterminals(self) -> Set[str]:
        symbols: Set[str] = set(self._by_lhs)
        symbols.add(self.start)
        for production in self.productions:
            symbols.update(s for s in production.rhs if is_nonterminal(s))
        return symbols

    @property
    def terminals(self) -> Set[str]:
        symbols: Set[str] = set()
        for production in self.productions:
            symbols.update(s for s in production.rhs if is_terminal(s))
        return symbols

    @property
    def symbols(self) -> Set[str]:
        return self.nonterminals | self.terminals

    def chain_productions(self) -> List[Production]:
        return [p for p in self.productions if p.is_chain]

    # -------------------------------------------------------- validation
    def undefined_nonterminals(self) -> Set[str]:
        """Non-terminals used on some RHS but never defined."""
        return {
            symbol
            for production in self.productions
            for symbol in production.rhs
            if is_nonterminal(symbol) and symbol not in self._by_lhs
        }

    def unreachable_nonterminals(self) -> Set[str]:
        """Non-terminals not derivable from the start symbol."""
        reachable = {self.start}
        frontier = [self.start]
        while frontier:
            lhs = frontier.pop()
            for production in self._by_lhs.get(lhs, ()):
                for symbol in production.rhs:
                    if is_nonterminal(symbol) and symbol not in reachable:
                        reachable.add(symbol)
                        frontier.append(symbol)
        return self.nonterminals - reachable

    def check(self, allow_unreachable: bool = False) -> None:
        """Raise :class:`GrammarError` on structural defects."""
        undefined = self.undefined_nonterminals()
        if undefined:
            raise GrammarError(
                f"undefined non-terminals: {', '.join(sorted(undefined))}"
            )
        if self.start not in self._by_lhs:
            raise GrammarError(f"start symbol {self.start!r} has no productions")
        if not allow_unreachable:
            unreachable = self.unreachable_nonterminals()
            if unreachable:
                raise GrammarError(
                    f"unreachable non-terminals: {', '.join(sorted(unreachable))}"
                )

    # ------------------------------------------------------------- stats
    def stats(self) -> GrammarStats:
        kinds = {kind: 0 for kind in ActionKind}
        for production in self.productions:
            kinds[production.action] += 1
        return GrammarStats(
            productions=len(self.productions),
            terminals=len(self.terminals),
            nonterminals=len(self.nonterminals),
            chain_productions=len(self.chain_productions()),
            emitting=kinds[ActionKind.EMIT],
            encapsulating=kinds[ActionKind.ENCAPSULATE],
            glue=kinds[ActionKind.GLUE],
        )

    # --------------------------------------------------------- augmented
    def augmented(self) -> Tuple["Grammar", Production]:
        """A copy with ``$accept <- start $end`` prepended, for the
        table constructor."""
        accept = Production(START, (self.start, END), ActionKind.GLUE,
                            origin="augmentation")
        grammar = Grammar(START)
        grammar.add(accept)
        for production in self.productions:
            grammar.add(production)
        return grammar, grammar.productions[0]

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"<Grammar start={self.start!r} productions={stats.productions} "
            f"terminals={stats.terminals} nonterminals={stats.nonterminals}>"
        )

    def dump(self) -> str:
        """The grammar in the text format `repro.grammar.reader` accepts."""
        lines = [f"%start {self.start}"]
        for production in self.productions:
            lines.append(str(production))
        return "\n".join(lines) + "\n"
