"""Attributed productions of a machine-description grammar.

In the factored grammar of section 4, *"productions now either encapsulate
phrases (subtrees), emit instructions, or serve as glue"*; a production's
:class:`ActionKind` records which.  An emitting production carries the
print template used by phase 4 to format assembly, in which ``%0`` denotes
the left-hand-side result and ``%1``/``%2``/... the right-hand-side
non-terminal operands in order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .symbols import is_nonterminal, is_terminal


class ActionKind(enum.Enum):
    """What a reduction by this production does (section 4)."""

    EMIT = "emit"            # emit one logical instruction
    ENCAPSULATE = "encap"    # condense a phrase (e.g. an addressing mode)
    GLUE = "glue"            # parsing-only: chain/bridge/class productions


@dataclass(frozen=True)
class Production:
    """One attributed production ``lhs <- rhs`` of the machine grammar.

    Attributes
    ----------
    lhs:
        Left-hand-side non-terminal (how the computation affects the
        processor — a register class, an addressing mode, or the
        sentential symbol).
    rhs:
        Prefix-linearized pattern: terminals and non-terminals.
    action:
        EMIT / ENCAPSULATE / GLUE.
    template:
        Assembly print format for EMIT productions (``"addl3 %1,%2,%0"``);
        for ENCAPSULATE productions it may name the addressing-mode
        constructor the semantic routines should apply.
    semantic:
        Name of the instruction-table cluster or semantic routine the
        reduction invokes — the analogue of the paper's hand-assigned
        production-number argument to ``R()`` (section 6.4).
    cost:
        Static instruction-count cost of the reduction, used for the code
        quality experiment (E7) and by the PCC comparison.
    origin:
        Provenance note: which generic production (pre-replication) or
        which repair (bridge production, overfactoring fix) created it.
    """

    lhs: str
    rhs: Tuple[str, ...]
    action: ActionKind = ActionKind.GLUE
    template: Optional[str] = None
    semantic: Optional[str] = None
    cost: int = 0
    origin: str = ""
    index: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if not is_nonterminal(self.lhs):
            raise ValueError(f"LHS {self.lhs!r} must be a non-terminal")
        if not self.rhs:
            raise ValueError(f"production {self.lhs!r} has an empty RHS")
        if self.action is ActionKind.EMIT and self.template is None:
            raise ValueError(
                f"emitting production {self.lhs} <- {' '.join(self.rhs)} "
                "lacks a print template"
            )

    # ------------------------------------------------------------- shape
    @property
    def is_chain(self) -> bool:
        """A unit production ``a <- b`` between non-terminals."""
        return len(self.rhs) == 1 and is_nonterminal(self.rhs[0])

    @property
    def is_operator_class(self) -> bool:
        """A production grouping a terminal operator into a class
        non-terminal, e.g. ``binop <- Or.l`` (section 6.2.1)."""
        return len(self.rhs) == 1 and is_terminal(self.rhs[0])

    @property
    def length(self) -> int:
        return len(self.rhs)

    def terminals(self) -> Tuple[str, ...]:
        return tuple(s for s in self.rhs if is_terminal(s))

    def nonterminals(self) -> Tuple[str, ...]:
        return tuple(s for s in self.rhs if is_nonterminal(s))

    def with_index(self, index: int) -> "Production":
        return Production(
            self.lhs, self.rhs, self.action, self.template,
            self.semantic, self.cost, self.origin, index,
        )

    def __str__(self) -> str:
        text = f"{self.lhs} <- {' '.join(self.rhs)}"
        if self.action is not ActionKind.GLUE:
            text += f"  :: {self.action.value}"
        if self.template:
            text += f' "{self.template}"'
        return text
