"""Per-function content-addressed *result* cache.

The table cache (:mod:`repro.tables.cache`) makes the static phase
near-free; this cache does the same for the dynamic phase on repeat
traffic.  It started life inside the compile service and now also backs
the batch driver's incremental mode (:func:`repro.compile.compile_program`
with ``incremental=True``): both probe the same keys, so a unit warmed
by one is warm for the other.  The key is content-addressed end to end::

    sha256(version | target | table fingerprint | engine | peephole |
           canonical globals | canonical function source)

so a warm entry is valid by construction: any change to the target, to
the constructed tables (grammar edits, compaction changes — via the
packed-content fingerprint), to the matcher engine, to the peephole
toggle, or to the function's own source splits the key space and
misses.  The target name is an *explicit* key component, not inferred
from the tables: two machine descriptions must never alias, even if
their packed tables ever hashed identically.  The value is
the function's emitted assembly text plus compact stats (instruction
count, the compile seconds it saved — which keeps ``cpu_seconds``
accounting honest — and the recovery-ladder tier that produced it).

Entries written by a recovery-ladder *rescue* are flagged
``rescued=True``: a degraded assembly (operand hoisting, PCC fallback)
is a valid answer for the compile that produced it but must never be
served to a later *healthy* compile of the same source.  Producers are
expected not to store rescued results at all; the flag is the
defense-in-depth for entries written by older code or other processes,
and :func:`entry_healthy` is the probe-side check.

Function identity is the *canonical* source — the unparser's rendering
of the parsed AST, prefixed by the unit's global declarations (globals
change frame-free addressing and sizes, so they are part of a
function's meaning) — not the raw request text, so whitespace and
comment churn still hit.

Two tiers: a bounded in-memory LRU (every server gets one) and an
optional persistent directory reusing the checksummed v2 envelope
machinery of :class:`repro.tables.cache.TableCache` under the
``result`` kind.  Persistent entries get the same integrity treatment
as table pickles: a flipped byte is detected before unpickling and the
entry is quarantined (``*.quarantined``); a payload that deserializes
but fails semantic validation (wrong key, missing assembly) is
explicitly rejected through the same quarantine path rather than
re-trusted.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Optional

from .frontend import cast
from .frontend.unparse import declarator, unparse
from .obs.metrics import REGISTRY as METRICS
from .tables.cache import TableCache, cache_enabled

#: Bump when the cached payload shape or the key derivation changes;
#: old persistent entries become plain misses.  v2 added the compact
#: stats (``instructions``, ``tier``, ``rescued``) to every entry.
#: v3 added the target name to the table fingerprint: two targets whose
#: packed tables happened to hash alike (or a future refactor that
#: shares tables) must never serve each other's assembly.
RESULT_VERSION = 3

#: Envelope namespace inside the shared cache directory
#: (``<key>.result.pickle``).
RESULT_KIND = "result"

#: In-memory LRU capacity, entries.  An entry is one function's
#: assembly text — small — so this bounds memory at a few megabytes.
DEFAULT_MEMORY_ENTRIES = 4096


def table_fingerprint(generator: Any) -> str:
    """Content identity of everything static a result depends on.

    The packed-table content hash (:func:`matchgen_fingerprint` covers
    symbols, action rows, gotos, reduce pools and production metadata)
    plus the generator options that change emitted text without
    changing the tables.  Computed once per generator — the server does
    it at startup — because hashing every packed row is milliseconds,
    not nanoseconds.
    """
    from .tables.compiled import matchgen_fingerprint

    hasher = hashlib.sha256()
    hasher.update(f"result-v{RESULT_VERSION}".encode())
    hasher.update(f"|target={generator.target.name}".encode())
    hasher.update(matchgen_fingerprint(generator.tables.packed()).encode())
    hasher.update(f"|peephole={generator.peephole}".encode())
    return hasher.hexdigest()


def canonical_function_texts(program: cast.Program) -> Dict[str, str]:
    """Name -> canonical per-function source for one parsed unit.

    Each function's text is the unparser's rendering of just that
    function, prefixed by the unit's global declarations: globals are
    part of a function's meaning (addressing, sizes), while sibling
    functions are not — calls are by name under a fixed convention —
    so two units sharing a function body and globals share its key.
    """
    globals_text = "".join(
        f"{declarator(decl.name, decl.ty)};\n" for decl in program.globals
    )
    texts: Dict[str, str] = {}
    for func in program.functions:
        solo = cast.Program(globals=program.globals, functions=[func])
        texts[func.name] = globals_text + unparse(solo)
    return texts


def result_key(fingerprint: str, engine: str, function_text: str) -> str:
    """The content address of one function's compiled assembly."""
    hasher = hashlib.sha256()
    hasher.update(fingerprint.encode())
    hasher.update(f"|engine={engine}|".encode())
    hasher.update(function_text.encode())
    return hasher.hexdigest()


def entry_healthy(entry: Dict[str, Any]) -> bool:
    """True when *entry* may answer a healthy compile.

    An entry flagged ``rescued`` carries assembly produced by a
    recovery-ladder rung (hoisted operands, PCC degrade) — correct for
    the degraded compile that stored it, stale the moment the tables
    are healthy again.  Entries without the flag (pre-v2 writers never
    stored rescues) are healthy by construction.
    """
    return not entry.get("rescued", False)


class ResultCache:
    """Bounded LRU of compiled-function results, optionally persistent.

    ``directory=None`` keeps the cache memory-only — the hermetic
    default for tests and short-lived servers.  With a directory, every
    store also writes a checksummed envelope through
    :class:`~repro.tables.cache.TableCache` (kind ``result``) and a
    memory miss falls through to disk; corrupt envelopes are
    quarantined there exactly like table pickles, and payloads that
    fail semantic validation are rejected through the same path.
    ``REPRO_TABLE_CACHE=0`` disables the persistent tier along with the
    rest of the cache machinery.
    """

    def __init__(
        self,
        fingerprint: str,
        engine: str,
        directory: Optional[str] = None,
        max_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        self.fingerprint = fingerprint
        self.engine = engine
        self.max_entries = max(1, max_entries)
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._store: Optional[TableCache] = None
        if directory is not None and cache_enabled():
            self._store = TableCache(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------- keys
    def key(self, function_text: str) -> str:
        return result_key(self.fingerprint, self.engine, function_text)

    def keys_for(self, program: cast.Program) -> Dict[str, str]:
        """Name -> result key for every function of a parsed unit."""
        return {
            name: self.key(text)
            for name, text in canonical_function_texts(program).items()
        }

    # ----------------------------------------------------------- lookup
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached entry for *key* (``assembly``, ``function``,
        ``cpu_seconds``), or ``None``.  Counts a hit or miss either way
        — both on the instance and in the metrics registry, so a
        request's metrics delta shows its own cache traffic."""
        entry = self._memory.get(key)
        if entry is None and self._store is not None:
            payload = self._store.load(key, kind=RESULT_KIND)
            if payload is not None:
                entry = self._validated(key, payload)
        if entry is None:
            self.misses += 1
            METRICS.inc("server.result_cache.misses")
            return None
        self._remember(key, entry)
        self.hits += 1
        METRICS.inc("server.result_cache.hits")
        return entry

    def _validated(
        self, key: str, payload: Any
    ) -> Optional[Dict[str, Any]]:
        """Semantic validation of a disk payload that passed the
        envelope checksum; a mismatch is quarantined, not re-trusted."""
        if (
            isinstance(payload, dict)
            and payload.get("key") == key
            and isinstance(payload.get("assembly"), str)
        ):
            return payload
        self._store.reject(
            key, "result payload failed validation", kind=RESULT_KIND
        )
        return None

    def _remember(self, key: str, entry: Dict[str, Any]) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------ store
    def put(
        self,
        key: str,
        function: str,
        assembly: str,
        cpu_seconds: float = 0.0,
        instructions: int = 0,
        tier: str = "",
        rescued: bool = False,
    ) -> Dict[str, Any]:
        entry = {
            "key": key,
            "function": function,
            "assembly": assembly,
            "cpu_seconds": cpu_seconds,
            "instructions": instructions,
            "tier": tier,
            "rescued": rescued,
        }
        self._remember(key, entry)
        if self._store is not None:
            self._store.store(key, entry, kind=RESULT_KIND)
        self.stores += 1
        METRICS.inc("server.result_cache.stores")
        return entry

    # ------------------------------------------------------------ stats
    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._memory),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "persistent": self._store is not None,
        }
