"""Workstation tools: statistics, dumps, and the ggcc CLI."""

from .ggdump import dump_blocking, dump_conflicts, dump_grammar, dump_states
from .stats import StatisticsReport, gather_statistics

__all__ = [
    "gather_statistics", "StatisticsReport",
    "dump_grammar", "dump_states", "dump_conflicts", "dump_blocking",
]
