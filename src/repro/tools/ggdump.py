"""Diagnostics dumps: grammar listings, automaton states, conflict logs.

These are the descendant of the CGGWS's inspection facilities: the paper's
authors iterated on their machine description by reading exactly this kind
of output (and, at two hours a rebuild, sparingly — section 7)."""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..grammar.grammar import Grammar
from ..tables.blocking import find_blocks, summarize_blocks
from ..tables.slr import ParseTables


def dump_grammar(grammar: Grammar, limit: Optional[int] = None) -> str:
    lines = [f"%start {grammar.start}"]
    productions = grammar.productions[:limit] if limit else grammar.productions
    for production in productions:
        lines.append(f"{production.index:4}  {production}")
    if limit and len(grammar.productions) > limit:
        lines.append(f"... {len(grammar.productions) - limit} more")
    return "\n".join(lines)


def dump_states(tables: ParseTables, states: Iterable[int]) -> str:
    parts: List[str] = []
    for state in states:
        parts.append(tables.automaton.describe_state(state))
        row = tables.actions[state]
        for symbol in sorted(row):
            parts.append(f"    on {symbol}: {row[symbol]!r}")
    return "\n\n".join(parts)


def dump_conflicts(tables: ParseTables, limit: int = 50) -> str:
    lines = [
        f"{len(tables.conflicts)} conflicts statically resolved "
        "(shift-preferred / longest-rule):"
    ]
    for record in tables.conflicts[:limit]:
        lines.append(f"  {record}")
    if len(tables.conflicts) > limit:
        lines.append(f"  ... {len(tables.conflicts) - limit} more")
    return "\n".join(lines)


def dump_blocking(tables: ParseTables) -> str:
    return summarize_blocks(find_blocks(tables))
