"""``ggcc`` — the command-line compiler driver.

Compile C-subset source to VAX assembly with either back end, print the
appendix-style matcher trace, dump grammar/table statistics, or execute
the program on the simulated VAX::

    ggcc file.c                      # GG backend, assembly to stdout
    ggcc --backend pcc file.c
    ggcc --trace file.c              # shift/reduce trace per statement
    ggcc --stats                     # section-8 statistics
    ggcc --run main --args 3,4 file.c

The differential fuzzer is a subcommand with its own options::

    ggcc fuzz --seed 0 --budget 30 --jobs 4

So is the chaos harness, which injects pipeline faults (corrupt tables,
truncated cache entries, de-bridged grammars, dead workers) and asserts
the recovery ladder never miscompiles silently::

    ggcc chaos --seed 0 --cases 2

``chaos-serve`` lifts the same discipline to the service: it boots the
real compile server and kills/hangs its supervised workers, corrupts
the persistent result cache, feeds it malformed frames and trickling
clients — asserting zero silent miscompiles and zero unanswered
requests::

    ggcc chaos-serve --scenario worker-kill --scenario worker-hang

Resilient compilation routes every function through the recovery ladder
and reports structured diagnostics (JSON with ``--diag-json``); failed
functions make the exit status non-zero::

    ggcc --resilient --diag-json file.c

Observability: ``--trace-json FILE`` records every pipeline stage as a
hierarchical span and writes Chrome ``trace_event`` JSON (load it in
Perfetto or ``chrome://tracing``); the ``profile`` subcommand compiles a
program under full metrics and prints the per-function phase report —
phase times are measured exclusively (each clock runs only while its
phase runs), so they are non-negative and sum to at most the wall time
by construction, and the report's exit status asserts exactly that::

    ggcc --trace-json trace.json file.c
    ggcc profile examples/quickstart
    ggcc profile --json --jobs 4 --parallel process file.c

The compile server keeps constructed tables (and, with ``--jobs``, a
persistent worker pool) warm in one long-lived process and serves
concurrent clients over a local socket — bounded admission queue with
``SERVER-OVERLOAD`` backpressure, per-request deadlines, and a
content-addressed result cache for repeat traffic.  ``load-test``
measures it: cold and warm rows of concurrent traffic with p50/p99
latency and throughput (``--out BENCH_server.json`` regenerates the
checked-in benchmark)::

With ``--workers N`` the server becomes self-healing: compiles run on
N supervised warm subprocesses with crash/hang detection, restart with
backoff, bounded re-dispatch, a circuit breaker, and SIGTERM/SIGINT
graceful drain.  ``load-test --resilience`` measures throughput under a
sustained worker-kill barrage next to the undisturbed warm row::

    ggcc serve --socket /tmp/ggcc.sock --jobs 4 --queue-limit 256
    ggcc serve --socket /tmp/ggcc.sock --workers 4 --job-timeout 30
    ggcc load-test --clients 50 --requests 4 --out BENCH_server.json
    ggcc load-test --resilience --out BENCH_server.json

``match-bench`` times the matcher's three drive loops (compiled, packed,
dict) over one program's linearized statements — the quick local check
that the compiled engine's speedup has not regressed::

    ggcc match-bench examples/quickstart
    ggcc match-bench --engine compiled --engine packed --json file.c
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..codegen.driver import GrahamGlanvilleCodeGenerator
from ..compile import compile_program
from ..matcher.trace import Tracer, format_trace
from ..tables.slr import construct_tables
from ..targets import UnknownTargetError, available_targets, resolve_target
from .ggdump import dump_blocking, dump_conflicts, dump_grammar
from .stats import gather_statistics


def _add_target_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--target`` flag.

    ``choices`` comes straight from the registry, so an unknown name is
    a hard argparse error listing the registered targets; an unknown
    ``$REPRO_TARGET`` value raises
    :class:`~repro.targets.registry.UnknownTargetError` at resolution.
    """
    parser.add_argument(
        "--target", choices=available_targets(), default=None,
        help="machine target to compile for (default honours "
             "$REPRO_TARGET, then vax)",
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ggcc",
        description="Graham-Glanville table-driven code generator for a "
                    "VAX subset (PLDI 1982 reproduction)",
    )
    parser.add_argument("source", nargs="?", help="C-subset source file "
                        "('-' for stdin)")
    parser.add_argument("--backend", choices=("gg", "pcc"), default="gg")
    _add_target_argument(parser)
    parser.add_argument("--trace", action="store_true",
                        help="print the pattern matcher's action trace")
    parser.add_argument("--stats", action="store_true",
                        help="print grammar/table statistics and exit")
    parser.add_argument("--dump-grammar", action="store_true",
                        help="print the replicated machine description")
    parser.add_argument("--dump-conflicts", action="store_true")
    parser.add_argument("--dump-blocking", action="store_true")
    parser.add_argument("--no-reversed-ops", action="store_true",
                        help="build the grammar without Rxxx operators")
    parser.add_argument("--engine", choices=("compiled", "packed", "dict"),
                        default=None,
                        help="matcher drive loop (default honours "
                             "$REPRO_MATCHER, then packed)")
    parser.add_argument("--peephole", action="store_true",
                        help="run the section-6.1 peephole optimizer over "
                             "the generated assembly")
    parser.add_argument("--run", metavar="FUNC",
                        help="execute FUNC on the target's simulator")
    parser.add_argument("--args", default="",
                        help="comma-separated integer arguments for --run")
    parser.add_argument("-o", "--output", help="write assembly to a file")
    parser.add_argument("--resilient", action="store_true",
                        help="route every function through the recovery "
                             "ladder; one bad function degrades instead of "
                             "aborting the program")
    parser.add_argument("--diag-json", action="store_true",
                        help="print collected diagnostics as JSON on stdout "
                             "(assembly then only goes to --output)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="compile functions concurrently (GG backend)")
    parser.add_argument("--parallel", choices=("thread", "process"),
                        default="thread", help="worker pool kind for --jobs")
    parser.add_argument("--incremental", dest="incremental",
                        action="store_true", default=None,
                        help="probe the content-addressed result cache per "
                             "function and only compile what changed "
                             "(GG backend; default honours "
                             "$REPRO_INCREMENTAL)")
    parser.add_argument("--no-incremental", dest="incremental",
                        action="store_false",
                        help="force incremental compilation off")
    parser.add_argument("--result-cache-dir", metavar="DIR", default=None,
                        help="persist incremental per-function results "
                             "under DIR (implies --incremental)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-function seconds before a process worker "
                             "is declared hung (resilient process mode)")
    parser.add_argument("--no-rescue-bridges", action="store_true",
                        help="build the grammar without the section-6.2.2 "
                             "rescue bridge productions (blocks at runtime; "
                             "pair with --resilient)")
    parser.add_argument("--trace-json", metavar="FILE", default=None,
                        help="record every pipeline stage as spans and "
                             "write Chrome trace_event JSON to FILE "
                             "(open in Perfetto)")
    return parser


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ggcc fuzz",
        description="differential fuzzing: random programs through "
                    "interpreter, GG backend and PCC baseline; findings "
                    "are minimized and recorded in fuzz/corpus/",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed; every case derives from it")
    _add_target_argument(parser)
    parser.add_argument("--budget", type=float, default=30.0,
                        help="wall-clock seconds to spend (default 30)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1, in-process)")
    parser.add_argument("--max-programs", type=int, default=None,
                        help="stop after N programs even within budget")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report raw findings without delta debugging")
    parser.add_argument("--no-record", action="store_true",
                        help="do not write findings to the corpus")
    parser.add_argument("--corpus", default=None,
                        help="corpus directory (default fuzz/corpus/)")
    parser.add_argument("--inject", choices=(), default=None,
                        help="plant a known bug first (self-test)")
    return parser


def fuzz_main(argv: List[str]) -> int:
    from ..fuzz import (Corpus, FuzzConfig, injected_bug, run_campaign)
    from ..fuzz.inject import BUGS

    parser = build_fuzz_parser()
    # choices for --inject come from the bug registry; patch them in so
    # the registry stays the single source of truth
    for action in parser._actions:
        if action.dest == "inject":
            action.choices = sorted(BUGS)
    options = parser.parse_args(argv)

    try:
        target = resolve_target(options.target).name
    except UnknownTargetError as exc:
        print(f"ggcc fuzz: error: {exc}", file=sys.stderr)
        return 2
    config = FuzzConfig(
        seed=options.seed,
        budget=options.budget,
        jobs=options.jobs,
        target=target,
        max_programs=options.max_programs,
        minimize=not options.no_minimize,
    )

    def campaign():
        return run_campaign(config, progress=print)

    if options.inject:
        with injected_bug(options.inject):
            stats = campaign()
    else:
        stats = campaign()

    for line in stats.summary_lines():
        print(line)

    if stats.findings and not options.no_record:
        corpus = Corpus(options.corpus)
        for finding in stats.findings:
            name = corpus.record(
                finding.minimized, finding.divergence,
                detail=finding.detail, seed=finding.seed,
                case=finding.case, statements=finding.statements,
            )
            print(f"fuzz: recorded {name} ({finding.divergence})")
        path = corpus.write_regression_test()
        print(f"fuzz: regenerated {path}")

    return 1 if stats.findings else 0


def build_chaos_parser() -> argparse.ArgumentParser:
    from ..fuzz.chaos import SCENARIOS

    parser = argparse.ArgumentParser(
        prog="ggcc chaos",
        description="pipeline fault injection: corrupt packed tables, "
                    "truncate cache entries, remove bridge productions, "
                    "kill and hang pool workers — then assert every "
                    "compile ends correct-or-cleanly-failed, never "
                    "silently miscompiled",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic campaign seed")
    parser.add_argument("--cases", type=int, default=2,
                        help="cases per scenario (default 2; case 0 is "
                             "the known minimal blocker)")
    parser.add_argument("--scenario", action="append", default=None,
                        choices=SCENARIOS, dest="scenarios",
                        help="run only this scenario (repeatable)")
    return parser


def chaos_main(argv: List[str]) -> int:
    from ..fuzz.chaos import run_chaos

    options = build_chaos_parser().parse_args(argv)
    report = run_chaos(
        seed=options.seed,
        cases_per_scenario=options.cases,
        scenarios=options.scenarios,
        progress=print,
    )
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


def build_chaos_serve_parser() -> argparse.ArgumentParser:
    from ..fuzz.chaos_serve import SERVE_SCENARIOS

    parser = argparse.ArgumentParser(
        prog="ggcc chaos-serve",
        description="service fault injection: boot the real compile "
                    "server and kill/hang its supervised workers, "
                    "corrupt the persistent result cache, feed it "
                    "malformed frames and trickling clients, make the "
                    "cache dir read-only — then assert zero silent "
                    "miscompiles (IR-interpreter oracle) and zero "
                    "unanswered requests",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic campaign seed")
    parser.add_argument("--cases", type=int, default=2,
                        help="cases per scenario (default 2; case 0 is "
                             "the known minimal blocker)")
    parser.add_argument("--scenario", action="append", default=None,
                        choices=SERVE_SCENARIOS, dest="scenarios",
                        help="run only this scenario (repeatable)")
    return parser


def chaos_serve_main(argv: List[str]) -> int:
    from ..fuzz.chaos_serve import run_chaos_serve

    options = build_chaos_serve_parser().parse_args(argv)
    report = run_chaos_serve(
        seed=options.seed,
        cases_per_scenario=options.cases,
        scenarios=options.scenarios,
        progress=print,
    )
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ggcc serve",
        description="long-lived compile daemon: construct the tables "
                    "once, keep a worker pool warm, and answer batch "
                    "compile requests over a local socket with "
                    "per-request diagnostics, metrics and span export",
    )
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="unix socket path to listen on "
                             "(default ./ggcc.sock)")
    parser.add_argument("--tcp", metavar="HOST:PORT", default=None,
                        help="listen on TCP loopback instead of a unix "
                             "socket (port 0 picks a free port)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="persistent worker-pool width (1 = compile "
                             "in the server process)")
    parser.add_argument("--workers", type=int, default=0,
                        help="supervised compile subprocesses (0 = the "
                             "single in-process executor); crashed or "
                             "hung workers restart and their requests "
                             "re-dispatch")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="seconds before a supervised worker is "
                             "declared hung (default 60)")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="re-dispatch budget per request after a "
                             "worker failure (default 1)")
    parser.add_argument("--drain-grace", type=float, default=None,
                        help="seconds shutdown waits for in-flight work "
                             "before answering SERVER-SHUTDOWN "
                             "(default 5)")
    parser.add_argument("--no-breaker", action="store_true",
                        help="disable the circuit breaker that sheds "
                             "load while the backend is failing")
    parser.add_argument("--max-requests", type=int, default=None,
                        help="exit after N requests (smoke tests)")
    parser.add_argument("--queue-limit", type=int, default=None,
                        help="admission-queue capacity; a full queue "
                             "rejects immediately with SERVER-OVERLOAD "
                             "backpressure (default 128)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="default per-request deadline in seconds "
                             "(requests may override per frame)")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="disable the per-function result cache")
    parser.add_argument("--result-cache-dir", metavar="DIR", default=None,
                        help="persist result-cache entries (checksummed "
                             "envelopes) under DIR")
    parser.add_argument("--no-reversed-ops", action="store_true")
    parser.add_argument("--peephole", action="store_true")
    parser.add_argument("--no-rescue-bridges", action="store_true")
    _add_target_argument(parser)
    parser.add_argument("--engine", choices=("compiled", "packed", "dict"),
                        default=None,
                        help="matcher drive loop for the server's "
                             "generator and its pool workers")
    return parser


def serve_main(argv: List[str]) -> int:
    from ..server import CompileServer

    from ..server.server import DEFAULT_QUEUE_LIMIT
    from ..server.supervisor import DEFAULT_JOB_TIMEOUT, DEFAULT_MAX_RETRIES

    options = build_serve_parser().parse_args(argv)
    try:
        generator = GrahamGlanvilleCodeGenerator(
            target=options.target,
            reversed_ops=not options.no_reversed_ops,
            peephole=options.peephole,
            rescue_bridges=not options.no_rescue_bridges,
            engine=options.engine,
        )
    except UnknownTargetError as exc:
        print(f"ggcc serve: error: {exc}", file=sys.stderr)
        return 2
    shared = dict(
        jobs=options.jobs, generator=generator,
        max_requests=options.max_requests,
        queue_limit=options.queue_limit or DEFAULT_QUEUE_LIMIT,
        default_deadline=options.deadline,
        result_cache=False if options.no_result_cache else None,
        result_cache_dir=options.result_cache_dir,
        workers=options.workers,
        job_timeout=(DEFAULT_JOB_TIMEOUT if options.job_timeout is None
                     else options.job_timeout),
        max_retries=(DEFAULT_MAX_RETRIES if options.max_retries is None
                     else options.max_retries),
        breaker=False if options.no_breaker else None,
        drain_grace=(5.0 if options.drain_grace is None
                     else options.drain_grace),
    )
    if options.tcp is not None:
        host, _, port = options.tcp.partition(":")
        server = CompileServer(
            host=host or "127.0.0.1", port=int(port or 0), **shared,
        )
    else:
        server = CompileServer(
            path=options.socket or "ggcc.sock", **shared,
        )
    server.bind()
    print(f"ggcc serve: listening on {server.address} "
          f"(target={generator.target.name}, jobs={options.jobs}, "
          f"workers={options.workers}, tables {generator.table_source})",
          file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    print(f"ggcc serve: served {server.requests_served} request(s), "
          f"{server.functions_compiled} function(s), "
          f"{server.errors} error(s)", file=sys.stderr)
    return 0


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ggcc profile",
        description="compile one program under full metrics and report "
                    "per-function phase times (transform/matching/"
                    "semantics/output, measured exclusively — never "
                    "clamped), static-phase and cache costs, and the "
                    "wall-vs-CPU split; exits non-zero if any timing "
                    "invariant is violated",
    )
    parser.add_argument("source",
                        help="a .c file, '-' for stdin, or an example "
                             "module exposing SOURCE (e.g. "
                             "examples/quickstart)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of the "
                             "human table")
    parser.add_argument("--backend", choices=("gg", "pcc"), default="gg")
    _add_target_argument(parser)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--parallel", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--resilient", action="store_true")
    parser.add_argument("--trace-json", metavar="FILE", default=None,
                        help="also write the run's Chrome trace_event "
                             "JSON to FILE")
    parser.add_argument("--no-reversed-ops", action="store_true")
    parser.add_argument("--peephole", action="store_true")
    return parser


def profile_main(argv: List[str]) -> int:
    from ..obs import install_recorder, uninstall_recorder
    from ..obs.profile import profile_program, resolve_profile_source

    options = build_profile_parser().parse_args(argv)
    try:
        source, label = resolve_profile_source(options.source)
    except (OSError, ValueError) as exc:
        print(f"ggcc profile: error: {exc}", file=sys.stderr)
        return 2

    recorder = install_recorder() if options.trace_json else None
    try:
        report, _ = profile_program(
            source, label=label, backend=options.backend,
            jobs=options.jobs, parallel=options.parallel,
            resilient=options.resilient,
            target=options.target,
            reversed_ops=not options.no_reversed_ops,
            peephole=options.peephole,
        )
    finally:
        if recorder is not None:
            uninstall_recorder()
    if recorder is not None:
        recorder.write_chrome_trace(options.trace_json)

    if options.json:
        print(report.to_json())
    else:
        print(report.format_human())
        if options.trace_json:
            print(f"trace written to {options.trace_json} "
                  f"({len(recorder)} spans) — load it in Perfetto")
    return 0 if report.ok else 1


def build_match_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ggcc match-bench",
        description="time the matcher's drive loops (compiled, packed, "
                    "dict) over one program's linearized statements and "
                    "print tokens/sec per engine — the quick local check "
                    "that the compiled engine's speedup has not regressed",
    )
    parser.add_argument("source",
                        help="a .c file, '-' for stdin, or an example "
                             "module exposing SOURCE (e.g. "
                             "examples/quickstart)")
    _add_target_argument(parser)
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of repeats per engine (default 5)")
    parser.add_argument("--engine", action="append", dest="engines",
                        choices=("compiled", "packed", "dict"), default=None,
                        help="bench only this engine (repeatable; "
                             "default all three)")
    parser.add_argument("--json", action="store_true",
                        help="emit results as JSON")
    return parser


def match_bench_main(argv: List[str]) -> int:
    import json
    import time

    from ..frontend import compile_c
    from ..ir.linearize import linearize
    from ..matcher.engine import ENGINES, Matcher, SemanticActions
    from ..obs.profile import resolve_profile_source

    options = build_match_bench_parser().parse_args(argv)
    try:
        source, label = resolve_profile_source(options.source)
    except (OSError, ValueError) as exc:
        print(f"ggcc match-bench: error: {exc}", file=sys.stderr)
        return 2
    engines = options.engines or list(ENGINES)
    repeats = max(1, options.repeats)

    try:
        gen = GrahamGlanvilleCodeGenerator(target=options.target)
    except UnknownTargetError as exc:
        print(f"ggcc match-bench: error: {exc}", file=sys.stderr)
        return 2
    program = compile_c(source, gen.machine)
    streams = []
    for name in program.order:
        work, _ = gen.transform(program.forest(name))
        streams.extend(linearize(tree) for tree in work.trees())
    tokens = sum(len(stream) for stream in streams)
    if not tokens:
        print("ggcc match-bench: error: program has no statements",
              file=sys.stderr)
        return 2

    rates = {}
    for engine in engines:
        matcher = Matcher(gen.tables, SemanticActions(), engine=engine)
        matcher.match_tokens(streams[0])  # bind/expand outside the clock
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            for stream in streams:
                matcher.match_tokens(stream)
            best = min(best, time.perf_counter() - started)
        rates[engine] = tokens / best

    baseline = rates.get("packed")
    if options.json:
        print(json.dumps({
            "label": label,
            "streams": len(streams),
            "tokens": tokens,
            "repeats": repeats,
            "tokens_per_sec": {
                engine: round(rate) for engine, rate in rates.items()
            },
        }, indent=2))
        return 0
    print(f"{label}: {len(streams)} statement stream(s), {tokens} tokens, "
          f"best of {repeats}")
    for engine in engines:
        line = f"  {engine:<9}{rates[engine]:>13,.0f} tokens/sec"
        if baseline and engine != "packed":
            line += f"  ({rates[engine] / baseline:.2f}x packed)"
        print(line)
    return 0


def build_load_test_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ggcc load-test",
        description="boot a private compile server and drive concurrent "
                    "clients against it: a cold row (every request a "
                    "distinct unit) and a warm row (pure result-cache "
                    "traffic), reporting p50/p99 latency, throughput, "
                    "and the warm-over-cold / vs-blocking speedups",
    )
    parser.add_argument("--clients", type=int, default=50,
                        help="concurrent closed-loop clients (default 50)")
    parser.add_argument("--requests", type=int, default=4,
                        help="requests per client (default 4)")
    parser.add_argument("--functions", type=int, default=3,
                        help="functions per generated unit (default 3)")
    parser.add_argument("--statements", type=int, default=6,
                        help="statements per function (default 6)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="server worker-pool width (default 1)")
    parser.add_argument("--queue-limit", type=int, default=None,
                        help="server admission-queue capacity "
                             "(default max(128, 2*clients))")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-request deadline in seconds")
    parser.add_argument("--seed", type=int, default=1982,
                        help="workload seed (default 1982)")
    parser.add_argument("--resilience", action="store_true",
                        help="also measure a supervised server under a "
                             "sustained worker-kill barrage and record "
                             "the disturbed/undisturbed throughput "
                             "ratio (gate: >= 0.5)")
    parser.add_argument("--workers", type=int, default=2,
                        help="supervised workers for --resilience "
                             "(default 2)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="also write the report as JSON to FILE "
                             "(e.g. BENCH_server.json)")
    return parser


def load_test_main(argv: List[str]) -> int:
    import json

    from ..server.loadgen import load_test_report, resilience_report

    options = build_load_test_parser().parse_args(argv)
    report = load_test_report(
        clients=options.clients,
        requests_per_client=options.requests,
        functions=options.functions,
        statements=options.statements,
        jobs=options.jobs,
        queue_limit=options.queue_limit,
        deadline=options.deadline,
        seed=options.seed,
    )
    if options.resilience:
        report["resilience"] = resilience_report(
            workers=options.workers, seed=options.seed,
        )
    if options.out:
        with open(options.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"ggcc load-test: wrote {options.out}", file=sys.stderr)
    print(json.dumps(report, indent=2, sort_keys=True))
    integrity = sum(
        report[row][key]
        for row in ("cold", "warm")
        for key in ("errors", "id_mismatches", "dropped_connections")
    )
    if options.resilience \
            and report["resilience"]["throughput_ratio"] < 0.5:
        print("ggcc load-test: resilience gate FAILED "
              f"(ratio {report['resilience']['throughput_ratio']} < 0.5)",
              file=sys.stderr)
        return 1
    return 0 if integrity == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return fuzz_main(list(argv[1:]))
    if argv and argv[0] == "chaos":
        return chaos_main(list(argv[1:]))
    if argv and argv[0] == "chaos-serve":
        return chaos_serve_main(list(argv[1:]))
    if argv and argv[0] == "profile":
        return profile_main(list(argv[1:]))
    if argv and argv[0] == "serve":
        return serve_main(list(argv[1:]))
    if argv and argv[0] == "load-test":
        return load_test_main(list(argv[1:]))
    if argv and argv[0] == "match-bench":
        return match_bench_main(list(argv[1:]))
    parser = build_arg_parser()
    options = parser.parse_args(argv)

    if options.stats or options.dump_grammar or options.dump_conflicts \
            or options.dump_blocking:
        try:
            target = resolve_target(options.target)
        except UnknownTargetError as exc:
            print(f"ggcc: error: {exc}", file=sys.stderr)
            return 2
        bundle = target.build_grammar(
            reversed_ops=not options.no_reversed_ops
        )
        tables = construct_tables(bundle.grammar)
        if options.stats:
            print(gather_statistics(bundle, tables).format())
        if options.dump_grammar:
            print(dump_grammar(bundle.grammar))
        if options.dump_conflicts:
            print(dump_conflicts(tables))
        if options.dump_blocking:
            print(dump_blocking(tables))
        if not options.source:
            return 0

    if not options.source:
        parser.error("no source file given")

    if options.source == "-":
        source = sys.stdin.read()
    else:
        with open(options.source) as handle:
            source = handle.read()

    if not options.trace_json:
        return _compile_main(options, source)

    # Install the span recorder before the generator is built so the
    # static phase (table construction, cache load) lands in the trace.
    from ..obs import install_recorder, uninstall_recorder

    recorder = install_recorder()
    try:
        return _compile_main(options, source)
    finally:
        uninstall_recorder()
        recorder.write_chrome_trace(options.trace_json)
        print(f"ggcc: trace written to {options.trace_json} "
              f"({len(recorder)} spans)", file=sys.stderr)


def _compile_main(options: argparse.Namespace, source: str) -> int:
    generator = None
    if options.backend == "gg":
        try:
            generator = GrahamGlanvilleCodeGenerator(
                target=options.target,
                reversed_ops=not options.no_reversed_ops,
                peephole=options.peephole,
                rescue_bridges=not options.no_rescue_bridges,
                engine=options.engine,
            )
        except UnknownTargetError as exc:
            print(f"ggcc: error: {exc}", file=sys.stderr)
            return 2

    if options.trace and options.backend == "gg":
        from ..frontend import compile_c

        program = compile_c(source, generator.machine)
        for name in program.order:
            tracer = Tracer()
            generator.compile(program.forest(name), trace=tracer)
            print(f"=== {name} ===")
            print(format_trace(tracer))
        return 0

    try:
        assembly = compile_program(
            source, options.backend, generator,
            jobs=options.jobs, parallel=options.parallel,
            resilient=options.resilient, timeout=options.timeout,
            incremental=options.incremental,
            result_cache_dir=options.result_cache_dir,
            target=options.target,
        )
    except Exception as exc:
        # without --resilient a block/crash is terminal; still report it
        # as one structured line and a non-zero exit, not a traceback
        print(f"ggcc: error: {type(exc).__name__}: {exc}", file=sys.stderr)
        print("diagnostics: 1 recorded, 1 error(s): "
              f"{type(exc).__name__}x1", file=sys.stderr)
        return 1

    if options.diag_json:
        print(assembly.diagnostics.to_json(indent=2))
    elif len(assembly.diagnostics):
        print(assembly.diagnostics.format_human(), file=sys.stderr)
    if len(assembly.diagnostics) or assembly.failed:
        print(assembly.diagnostics.summary_line(), file=sys.stderr)
    if assembly.failed:
        print(
            f"ggcc: error: {len(assembly.failed)} function(s) failed: "
            + ", ".join(assembly.failed),
            file=sys.stderr,
        )

    if options.run:
        if assembly.failed:
            return 1
        vax = assembly.simulator()
        args = [int(a) for a in options.args.split(",") if a.strip()]
        result = vax.call(options.run, args)
        print(f"{options.run}({', '.join(map(str, args))}) = {result}")
        return 0

    text = assembly.text
    if options.output:
        with open(options.output, "w") as handle:
            handle.write(text)
    elif not options.diag_json:
        print(text)
    return 1 if assembly.failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
