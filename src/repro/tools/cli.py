"""``ggcc`` — the command-line compiler driver.

Compile C-subset source to VAX assembly with either back end, print the
appendix-style matcher trace, dump grammar/table statistics, or execute
the program on the simulated VAX::

    ggcc file.c                      # GG backend, assembly to stdout
    ggcc --backend pcc file.c
    ggcc --trace file.c              # shift/reduce trace per statement
    ggcc --stats                     # section-8 statistics
    ggcc --run main --args 3,4 file.c
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..codegen.driver import GrahamGlanvilleCodeGenerator
from ..compile import compile_program
from ..matcher.trace import Tracer, format_trace
from ..tables.slr import construct_tables
from ..vax.grammar_gen import build_vax_grammar
from .ggdump import dump_blocking, dump_conflicts, dump_grammar
from .stats import gather_statistics


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ggcc",
        description="Graham-Glanville table-driven code generator for a "
                    "VAX subset (PLDI 1982 reproduction)",
    )
    parser.add_argument("source", nargs="?", help="C-subset source file "
                        "('-' for stdin)")
    parser.add_argument("--backend", choices=("gg", "pcc"), default="gg")
    parser.add_argument("--trace", action="store_true",
                        help="print the pattern matcher's action trace")
    parser.add_argument("--stats", action="store_true",
                        help="print grammar/table statistics and exit")
    parser.add_argument("--dump-grammar", action="store_true",
                        help="print the replicated machine description")
    parser.add_argument("--dump-conflicts", action="store_true")
    parser.add_argument("--dump-blocking", action="store_true")
    parser.add_argument("--no-reversed-ops", action="store_true",
                        help="build the grammar without Rxxx operators")
    parser.add_argument("--peephole", action="store_true",
                        help="run the section-6.1 peephole optimizer over "
                             "the generated assembly")
    parser.add_argument("--run", metavar="FUNC",
                        help="execute FUNC on the simulated VAX")
    parser.add_argument("--args", default="",
                        help="comma-separated integer arguments for --run")
    parser.add_argument("-o", "--output", help="write assembly to a file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_arg_parser()
    options = parser.parse_args(argv)

    if options.stats or options.dump_grammar or options.dump_conflicts \
            or options.dump_blocking:
        bundle = build_vax_grammar(reversed_ops=not options.no_reversed_ops)
        tables = construct_tables(bundle.grammar)
        if options.stats:
            print(gather_statistics(bundle, tables).format())
        if options.dump_grammar:
            print(dump_grammar(bundle.grammar))
        if options.dump_conflicts:
            print(dump_conflicts(tables))
        if options.dump_blocking:
            print(dump_blocking(tables))
        if not options.source:
            return 0

    if not options.source:
        parser.error("no source file given")

    if options.source == "-":
        source = sys.stdin.read()
    else:
        with open(options.source) as handle:
            source = handle.read()

    generator = None
    if options.backend == "gg":
        generator = GrahamGlanvilleCodeGenerator(
            reversed_ops=not options.no_reversed_ops,
            peephole=options.peephole,
        )

    if options.trace and options.backend == "gg":
        from ..frontend import compile_c

        program = compile_c(source)
        for name in program.order:
            tracer = Tracer()
            generator.compile(program.forest(name), trace=tracer)
            print(f"=== {name} ===")
            print(format_trace(tracer))
        return 0

    assembly = compile_program(source, options.backend, generator)

    if options.run:
        vax = assembly.simulator()
        args = [int(a) for a in options.args.split(",") if a.strip()]
        result = vax.call(options.run, args)
        print(f"{options.run}({', '.join(map(str, args))}) = {result}")
        return 0

    text = assembly.text
    if options.output:
        with open(options.output, "w") as handle:
            handle.write(text)
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
