"""Statistics gathering — the numbers section 8 reports.

One call to :func:`gather_statistics` produces the full E1 row set:
generic grammar size, replicated grammar size, parser state count, table
entries, conflict counts, and chain-production figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..grammar.analyses import chain_depth
from ..tables.encode import measure_tables
from ..tables.slr import ParseTables, construct_tables
from ..vax.grammar_gen import VaxGrammarBundle, build_vax_grammar


@dataclass
class StatisticsReport:
    """Everything experiment E1 prints, with the paper's numbers beside."""

    generic_productions: int
    generic_terminals: int
    generic_nonterminals: int
    replicated_productions: int
    replicated_terminals: int
    replicated_nonterminals: int
    states: int
    table_entries: int
    packed_entries: int
    packed_bytes: int
    chain_productions: int
    max_chain_depth: int
    shift_reduce_resolved: int
    reduce_reduce_resolved: int
    ambiguous_reduces: int
    build_seconds: float

    PAPER = {
        "generic_productions": 458,
        "generic_terminals": 115,
        "generic_nonterminals": 96,
        "replicated_productions": 1073,
        "replicated_terminals": 219,
        "replicated_nonterminals": 148,
        "states": 2216,
    }

    def rows(self) -> Dict[str, Dict[str, Optional[int]]]:
        """measured-vs-paper rows keyed by metric name."""
        out: Dict[str, Dict[str, Optional[int]]] = {}
        for key, paper_value in self.PAPER.items():
            out[key] = {"ours": getattr(self, key), "paper": paper_value}
        return out

    def format(self) -> str:
        lines = [
            "grammar / table statistics (section 8)",
            f"{'metric':34} {'ours':>8} {'paper':>8}",
        ]
        for key, row in self.rows().items():
            lines.append(f"{key:34} {row['ours']:>8} {row['paper']:>8}")
        lines.append(f"{'table entries (sparse)':34} {self.table_entries:>8}")
        lines.append(f"{'table entries (packed)':34} {self.packed_entries:>8}")
        lines.append(f"{'packed table bytes':34} {self.packed_bytes:>8}")
        lines.append(f"{'chain productions':34} {self.chain_productions:>8}")
        lines.append(f"{'max chain depth':34} {self.max_chain_depth:>8}")
        lines.append(f"{'shift/reduce resolved':34} {self.shift_reduce_resolved:>8}")
        lines.append(f"{'reduce/reduce resolved':34} {self.reduce_reduce_resolved:>8}")
        lines.append(f"{'runtime-tied reduces':34} {self.ambiguous_reduces:>8}")
        lines.append(f"table construction: {self.build_seconds:.3f}s")
        return "\n".join(lines)


def gather_statistics(
    bundle: Optional[VaxGrammarBundle] = None,
    tables: Optional[ParseTables] = None,
    reversed_ops: bool = True,
) -> StatisticsReport:
    if bundle is None:
        bundle = build_vax_grammar(reversed_ops=reversed_ops)
    if tables is None:
        tables = construct_tables(bundle.grammar)
    grammar_stats = bundle.grammar.stats()
    size = measure_tables(tables)
    depths = chain_depth(bundle.grammar)
    return StatisticsReport(
        generic_productions=bundle.generic_count,
        generic_terminals=bundle.generic_terminals,
        generic_nonterminals=bundle.generic_nonterminals,
        replicated_productions=grammar_stats.productions,
        replicated_terminals=grammar_stats.terminals,
        replicated_nonterminals=grammar_stats.nonterminals,
        states=tables.stats.states,
        table_entries=tables.stats.total_entries,
        packed_entries=size.packed_entries,
        packed_bytes=size.packed_bytes,
        chain_productions=grammar_stats.chain_productions,
        max_chain_depth=max(depths.values()) if depths else 0,
        shift_reduce_resolved=tables.stats.shift_reduce_resolved,
        reduce_reduce_resolved=tables.stats.reduce_reduce_resolved,
        ambiguous_reduces=tables.stats.ambiguous_reduces,
        build_seconds=tables.stats.build_seconds,
    )
