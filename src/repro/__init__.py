"""repro — a reproduction of Graham, Henry & Schulman,
"An Experiment in Table Driven Code Generation" (SIGPLAN/PLDI 1982).

The package rebuilds the paper's whole system in Python:

* :mod:`repro.ir` — the PCC-style expression-tree intermediate
  representation both code generators consume;
* :mod:`repro.grammar` — machine-description grammars, with the
  type-replication macro preprocessor of section 6.4;
* :mod:`repro.tables` — the SLR(1)-style table constructor with
  Graham-Glanville disambiguation (and the deliberately slow historical
  constructor for the speedup experiment);
* :mod:`repro.matcher` — the table-driven instruction pattern matcher;
* :mod:`repro.vax` — the VAX-11 target: grammar, instruction table
  (Figure 3), register manager, semantic actions;
* :mod:`repro.codegen` — the phase pipeline of Figure 2 (tree transforms,
  matching, instruction generation, output);
* :mod:`repro.pcc` — the PCC-style ad hoc baseline the paper compares
  against;
* :mod:`repro.frontend` — a C-subset front end producing IR forests;
* :mod:`repro.sim` — a VAX-subset assembler + CPU simulator and an IR
  reference interpreter for differential validation;
* :mod:`repro.workloads` — benchmark kernels and a synthetic generator;
* :mod:`repro.tools` — statistics, dumps, and the ``ggcc`` CLI.

Quickstart::

    from repro import compile_program
    assembly = compile_program("int f(int x) { return x + 1; }")
    print(assembly.text)
    print(assembly.simulator().call("f", [41]))   # -> 42
"""

from .codegen.driver import (
    CompileResult, GrahamGlanvilleCodeGenerator, compile_forest,
)
from .compile import ProgramAssembly, compile_program, run_program
from .frontend.lower import compile_c
from .pcc.codegen import PccCodeGenerator, pcc_compile
from .vax.grammar_gen import build_vax_grammar

__version__ = "1.0.0"

__all__ = [
    "GrahamGlanvilleCodeGenerator", "CompileResult", "compile_forest",
    "compile_program", "run_program", "ProgramAssembly",
    "compile_c", "pcc_compile", "PccCodeGenerator", "build_vax_grammar",
    "__version__",
]
