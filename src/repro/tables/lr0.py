"""LR(0) item sets — the canonical collection for the machine grammar.

This is the *improved* constructor mentioned in section 9: the authors'
first table constructor "took over two memory-intensive hours" on the full
VAX description and was reworked to run in ten minutes.  The speed here
comes from the standard tricks: items are integer pairs, closures are
computed once per state with a worklist over non-terminals (not a fixpoint
over all productions), successor kernels are grouped in one pass, and
states are deduplicated through a hash map keyed on frozen kernels.
A deliberately faithful recreation of the slow constructor lives in
:mod:`repro.tables.naive` for the E5 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import is_nonterminal

#: An LR(0) item: (production index, dot position).
Item = Tuple[int, int]

#: A state's kernel: the items that define it.
Kernel = FrozenSet[Item]


@dataclass
class Automaton:
    """The LR(0) automaton of an augmented grammar.

    ``kernels[i]`` is state *i*'s kernel; ``closures[i]`` its full item
    set; ``transitions[i]`` maps a grammar symbol to the successor state.
    State 0 is the start state, whose kernel is ``$accept <- . start $end``.
    """

    grammar: Grammar
    kernels: List[Kernel]
    closures: List[Tuple[Item, ...]]
    transitions: List[Dict[str, int]]

    @property
    def state_count(self) -> int:
        return len(self.kernels)

    def items_expecting(self, state: int) -> Set[str]:
        """Symbols that appear immediately after a dot in *state*."""
        expecting: Set[str] = set()
        for prod_index, dot in self.closures[state]:
            rhs = self.grammar[prod_index].rhs
            if dot < len(rhs):
                expecting.add(rhs[dot])
        return expecting

    def final_items(self, state: int) -> List[int]:
        """Production indices whose items are complete in *state*."""
        return [
            prod_index
            for prod_index, dot in self.closures[state]
            if dot == len(self.grammar[prod_index].rhs)
        ]

    def describe_state(self, state: int) -> str:
        """Human-readable item listing, for ggdump and error messages."""
        lines = [f"state {state}:"]
        for prod_index, dot in sorted(self.closures[state]):
            production = self.grammar[prod_index]
            rhs = list(production.rhs)
            rhs.insert(dot, ".")
            lines.append(f"  [{production.lhs} <- {' '.join(rhs)}]")
        for symbol, target in sorted(self.transitions[state].items()):
            lines.append(f"  {symbol} => state {target}")
        return "\n".join(lines)


def build_automaton(grammar: Grammar) -> Automaton:
    """Construct the LR(0) canonical collection for *grammar*.

    *grammar* must already be augmented (``$accept`` start production at
    index 0); :meth:`repro.grammar.Grammar.augmented` produces that form.
    """
    productions = grammar.productions
    rhs_of: Sequence[Tuple[str, ...]] = [p.rhs for p in productions]
    by_lhs: Dict[str, List[int]] = {}
    for index, production in enumerate(productions):
        by_lhs.setdefault(production.lhs, []).append(index)

    kernels: List[Kernel] = []
    closures: List[Tuple[Item, ...]] = []
    transitions: List[Dict[str, int]] = []
    index_of: Dict[Kernel, int] = {}

    def intern(kernel: Kernel) -> int:
        existing = index_of.get(kernel)
        if existing is not None:
            return existing
        state = len(kernels)
        index_of[kernel] = state
        kernels.append(kernel)
        closures.append(_close(kernel, rhs_of, by_lhs))
        transitions.append({})
        return state

    start_kernel: Kernel = frozenset({(0, 0)})
    intern(start_kernel)

    frontier = [0]
    while frontier:
        state = frontier.pop()
        successors: Dict[str, Set[Item]] = {}
        for prod_index, dot in closures[state]:
            rhs = rhs_of[prod_index]
            if dot < len(rhs):
                successors.setdefault(rhs[dot], set()).add((prod_index, dot + 1))
        # Sorted successor order keeps state numbering deterministic and
        # identical to the naive constructor's, so the two automata can be
        # compared state-for-state in tests and in experiment E5.
        for symbol in sorted(successors):
            kernel = frozenset(successors[symbol])
            known = kernel in index_of
            target = intern(kernel)
            transitions[state][symbol] = target
            if not known:
                frontier.append(target)

    return Automaton(grammar, kernels, closures, transitions)


def _close(
    kernel: Kernel,
    rhs_of: Sequence[Tuple[str, ...]],
    by_lhs: Dict[str, List[int]],
) -> Tuple[Item, ...]:
    """Closure of a kernel: add ``N <- . alpha`` for every non-terminal N
    after a dot, transitively, visiting each non-terminal once."""
    items: Set[Item] = set(kernel)
    pending_nts: List[str] = []
    seen_nts: Set[str] = set()

    for prod_index, dot in kernel:
        rhs = rhs_of[prod_index]
        if dot < len(rhs) and is_nonterminal(rhs[dot]):
            if rhs[dot] not in seen_nts:
                seen_nts.add(rhs[dot])
                pending_nts.append(rhs[dot])

    while pending_nts:
        nt = pending_nts.pop()
        for prod_index in by_lhs.get(nt, ()):
            item = (prod_index, 0)
            if item in items:
                continue
            items.add(item)
            rhs = rhs_of[prod_index]
            if rhs and is_nonterminal(rhs[0]) and rhs[0] not in seen_nts:
                seen_nts.add(rhs[0])
                pending_nts.append(rhs[0])

    return tuple(sorted(items))
