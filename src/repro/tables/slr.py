"""SLR(1) parse-table construction with Graham-Glanville disambiguation.

"The machine description grammar is processed by a table-generating
program similar to an SLR(1) parser generator" (section 3.2).  Machine
grammars are highly ambiguous; the constructor disambiguates by

* favoring a **shift** over a reduce in a shift/reduce conflict, and
* favoring the **longest rule** in a reduce/reduce conflict (maximal
  munch); ties among equally long rules are kept in the table for the
  matcher to resolve dynamically with semantic attributes.

The constructor also refuses grammars whose chain rules can loop
(section 3.2's anti-looping guarantee) and exposes the automaton for the
syntactic-block analysis in :mod:`repro.tables.blocking`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..grammar.analyses import find_chain_cycles, follow_sets
from ..grammar.grammar import Grammar
from ..grammar.production import Production
from ..grammar.symbols import END, is_nonterminal, is_terminal
from .actions import (
    Accept, Action, ConflictKind, ConflictRecord, Reduce, Shift,
)
from .lr0 import Automaton, build_automaton


class TableConstructionError(ValueError):
    """Raised when a machine description cannot yield usable tables."""


@dataclass
class TableStats:
    """Size/shape numbers for one constructed table (sections 8, E1, E4)."""

    states: int
    action_entries: int
    goto_entries: int
    shift_reduce_resolved: int
    reduce_reduce_resolved: int
    ambiguous_reduces: int
    build_seconds: float

    @property
    def total_entries(self) -> int:
        """The "size of the tables" measure used by experiment E4."""
        return self.action_entries + self.goto_entries


@dataclass
class ParseTables:
    """Constructed parse tables driving the instruction pattern matcher.

    ``actions[state][terminal]`` is a :class:`Shift`, :class:`Reduce` or
    :class:`Accept`; a missing entry is the error action (a syntactic
    block at matching time).  ``gotos[state][nonterminal]`` is the
    successor state after a reduction.
    """

    grammar: Grammar            # the augmented grammar
    automaton: Automaton
    actions: List[Dict[str, Action]]
    gotos: List[Dict[str, int]]
    conflicts: List[ConflictRecord]
    stats: TableStats
    start_state: int = 0

    def production(self, index: int) -> Production:
        return self.grammar[index]

    def action_for(self, state: int, terminal: str) -> Optional[Action]:
        return self.actions[state].get(terminal)

    def goto_for(self, state: int, nonterminal: str) -> Optional[int]:
        return self.gotos[state].get(nonterminal)


def construct_tables(
    grammar: Grammar,
    allow_chain_cycles: bool = False,
) -> ParseTables:
    """Build SLR(1) tables for a (non-augmented) machine grammar."""
    started = time.perf_counter()

    cycles = find_chain_cycles(grammar)
    if cycles and not allow_chain_cycles:
        rendered = "; ".join(" -> ".join(cycle) for cycle in cycles)
        raise TableConstructionError(
            f"chain productions can loop: {rendered} "
            "(the pattern matcher would reduce forever)"
        )

    augmented, _ = grammar.augmented()
    automaton = build_automaton(augmented)
    follow = follow_sets(augmented)

    actions: List[Dict[str, Action]] = []
    gotos: List[Dict[str, int]] = []
    conflicts: List[ConflictRecord] = []
    ambiguous = 0

    for state in range(automaton.state_count):
        state_actions: Dict[str, Action] = {}
        state_gotos: Dict[str, int] = {}

        for symbol, target in automaton.transitions[state].items():
            if is_nonterminal(symbol):
                state_gotos[symbol] = target
            elif symbol == END:
                # Shifting $end in the $accept production means the whole
                # expression parsed: that is the accept action.
                state_actions[END] = Accept()
            else:
                state_actions[symbol] = Shift(target)

        # Group completed items by lookahead terminal.
        reduce_candidates: Dict[str, List[int]] = {}
        for prod_index in automaton.final_items(state):
            production = augmented[prod_index]
            if prod_index == 0:
                continue  # $accept item; accept handled via $end shift
            for terminal in follow[production.lhs]:
                reduce_candidates.setdefault(terminal, []).append(prod_index)

        for terminal, candidates in reduce_candidates.items():
            chosen, record = _resolve(
                state, terminal, state_actions.get(terminal), candidates, augmented
            )
            if record is not None:
                conflicts.append(record)
            if chosen is not None:
                if isinstance(chosen, Reduce) and chosen.is_ambiguous:
                    ambiguous += 1
                state_actions[terminal] = chosen

        actions.append(state_actions)
        gotos.append(state_gotos)

    elapsed = time.perf_counter() - started
    stats = TableStats(
        states=automaton.state_count,
        action_entries=sum(len(row) for row in actions),
        goto_entries=sum(len(row) for row in gotos),
        shift_reduce_resolved=sum(
            1 for c in conflicts if c.kind is ConflictKind.SHIFT_REDUCE
        ),
        reduce_reduce_resolved=sum(
            1 for c in conflicts if c.kind is ConflictKind.REDUCE_REDUCE
        ),
        ambiguous_reduces=ambiguous,
        build_seconds=elapsed,
    )
    return ParseTables(augmented, automaton, actions, gotos, conflicts, stats)


def _resolve(
    state: int,
    terminal: str,
    existing: Optional[Action],
    candidates: List[int],
    grammar: Grammar,
) -> Tuple[Optional[Action], Optional[ConflictRecord]]:
    """Apply the Graham-Glanville disambiguation rules at one table cell."""
    # Reduce/reduce: keep the longest rules; ties stay in the table.
    if len(candidates) > 1:
        longest = max(len(grammar[p].rhs) for p in candidates)
        winners = tuple(
            sorted(p for p in candidates if len(grammar[p].rhs) == longest)
        )
        losers = tuple(
            sorted(p for p in candidates if len(grammar[p].rhs) != longest)
        )
        reduce_action = Reduce(winners)
        record = ConflictRecord(
            ConflictKind.REDUCE_REDUCE, state, terminal, reduce_action, losers
        ) if losers or len(winners) > 1 else None
    else:
        reduce_action = Reduce((candidates[0],))
        record = None

    # Shift/reduce: the shift (or accept) always wins.
    if isinstance(existing, (Shift, Accept)):
        return None, ConflictRecord(
            ConflictKind.SHIFT_REDUCE, state, terminal, existing,
            reduce_action.productions,
        )
    return reduce_action, record
