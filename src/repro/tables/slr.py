"""SLR(1) parse-table construction with Graham-Glanville disambiguation.

"The machine description grammar is processed by a table-generating
program similar to an SLR(1) parser generator" (section 3.2).  Machine
grammars are highly ambiguous; the constructor disambiguates by

* favoring a **shift** over a reduce in a shift/reduce conflict, and
* favoring the **longest rule** in a reduce/reduce conflict (maximal
  munch); ties among equally long rules are kept in the table for the
  matcher to resolve dynamically with semantic attributes.

The constructor also refuses grammars whose chain rules can loop
(section 3.2's anti-looping guarantee) and exposes the automaton for the
syntactic-block analysis in :mod:`repro.tables.blocking`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..grammar.analyses import find_chain_cycles, follow_sets
from ..grammar.grammar import Grammar
from ..grammar.production import Production
from ..grammar.symbols import END, is_nonterminal, is_terminal
from .actions import (
    Accept, Action, ConflictKind, ConflictRecord, Reduce, Shift,
)
from .lr0 import Automaton, build_automaton


class TableConstructionError(ValueError):
    """Raised when a machine description cannot yield usable tables."""


@dataclass
class TableStats:
    """Size/shape numbers for one constructed table (sections 8, E1, E4)."""

    states: int
    action_entries: int
    goto_entries: int
    shift_reduce_resolved: int
    reduce_reduce_resolved: int
    ambiguous_reduces: int
    build_seconds: float

    @property
    def total_entries(self) -> int:
        """The "size of the tables" measure used by experiment E4."""
        return self.action_entries + self.goto_entries


@dataclass
class ParseTables:
    """Constructed parse tables driving the instruction pattern matcher.

    ``actions[state][terminal]`` is a :class:`Shift`, :class:`Reduce` or
    :class:`Accept`; a missing entry is the error action (a syntactic
    block at matching time).  ``gotos[state][nonterminal]`` is the
    successor state after a reduction.
    """

    grammar: Grammar            # the augmented grammar
    automaton: Automaton
    actions: List[Dict[str, Action]]
    gotos: List[Dict[str, int]]
    conflicts: List[ConflictRecord]
    stats: TableStats
    start_state: int = 0
    _packed: Optional[object] = field(default=None, repr=False, compare=False)

    def production(self, index: int) -> Production:
        return self.grammar[index]

    def action_for(self, state: int, terminal: str) -> Optional[Action]:
        return self.actions[state].get(terminal)

    def goto_for(self, state: int, nonterminal: str) -> Optional[int]:
        return self.gotos[state].get(nonterminal)

    def packed(self):
        """The packed (array) rendering of these tables, built once and
        memoized — the matcher's live representation.  Cached pickles of
        :class:`ParseTables` carry the packed form along, so a warm start
        skips packing as well as construction."""
        if self._packed is None:
            from .encode import pack_tables

            self._packed = pack_tables(self)
        return self._packed

    # -------------------------------------------------- fast (un)pickling
    # A naive pickle of the action rows materializes tens of thousands of
    # tiny frozen dataclasses and costs ~10x the rest of the tables to
    # load, defeating the warm-start cache.  On the way out, flatten
    # actions/conflicts to primitive tuples and tuck them into a nested
    # pickle blob (loaded as one opaque bytes object); on the way in,
    # leave the blob sealed and materialize the dict rows only when
    # something actually asks for them — the packed matcher never does.
    def __getstate__(self):
        import pickle

        state = self.__dict__.copy()
        if "actions" not in state:  # still sealed: pass the blob through
            state["actions"] = state.pop("_sealed_rows")
        else:
            flat_actions = [
                [(symbol, *_flatten_action(action))
                 for symbol, action in row.items()]
                for row in state.pop("actions")
            ]
            flat_conflicts = [
                (c.kind.value, c.state, c.symbol, _flatten_action(c.chosen),
                 c.rejected)
                for c in state.pop("conflicts")
            ]
            state["actions"] = pickle.dumps(
                (flat_actions, flat_conflicts),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        state.pop("conflicts", None)
        return state

    def __setstate__(self, state):
        state["_sealed_rows"] = state.pop("actions")
        self.__dict__.update(state)

    def __getattr__(self, name):
        if name in ("actions", "conflicts") and "_sealed_rows" in self.__dict__:
            self._unseal()
            return getattr(self, name)
        raise AttributeError(name)

    def _unseal(self) -> None:
        """Decode the pickled action rows, interning the (heavily
        repeated) Shift/Reduce objects through small pools."""
        import pickle

        flat_actions, flat_conflicts = pickle.loads(
            self.__dict__.pop("_sealed_rows")
        )
        shifts: Dict[int, Shift] = {}
        reduces: Dict[Tuple[int, ...], Reduce] = {}
        accept = Accept()

        def revive(tag, argument) -> Action:
            if tag == "s":
                action = shifts.get(argument)
                if action is None:
                    action = shifts[argument] = Shift(argument)
                return action
            if tag == "r":
                action = reduces.get(argument)
                if action is None:
                    action = reduces[argument] = Reduce(argument)
                return action
            return accept

        self.actions = [
            {symbol: revive(tag, argument) for symbol, tag, argument in row}
            for row in flat_actions
        ]
        self.conflicts = [
            ConflictRecord(ConflictKind(kind), state, symbol,
                           revive(*chosen), rejected)
            for kind, state, symbol, chosen, rejected in flat_conflicts
        ]


def _flatten_action(action: Action) -> Tuple[str, object]:
    """Primitive (tag, argument) pair for fast pickling."""
    if isinstance(action, Shift):
        return "s", action.state
    if isinstance(action, Reduce):
        return "r", action.productions
    return "a", None


def construct_tables(
    grammar: Grammar,
    allow_chain_cycles: bool = False,
) -> ParseTables:
    """Build SLR(1) tables for a (non-augmented) machine grammar."""
    started = time.perf_counter()

    cycles = find_chain_cycles(grammar)
    if cycles and not allow_chain_cycles:
        rendered = "; ".join(" -> ".join(cycle) for cycle in cycles)
        raise TableConstructionError(
            f"chain productions can loop: {rendered} "
            "(the pattern matcher would reduce forever)"
        )

    augmented, _ = grammar.augmented()
    automaton = build_automaton(augmented)
    follow = follow_sets(augmented)

    actions: List[Dict[str, Action]] = []
    gotos: List[Dict[str, int]] = []
    conflicts: List[ConflictRecord] = []
    ambiguous = 0

    for state in range(automaton.state_count):
        state_actions: Dict[str, Action] = {}
        state_gotos: Dict[str, int] = {}

        for symbol, target in automaton.transitions[state].items():
            if is_nonterminal(symbol):
                state_gotos[symbol] = target
            elif symbol == END:
                # Shifting $end in the $accept production means the whole
                # expression parsed: that is the accept action.
                state_actions[END] = Accept()
            else:
                state_actions[symbol] = Shift(target)

        # Group completed items by lookahead terminal.
        reduce_candidates: Dict[str, List[int]] = {}
        for prod_index in automaton.final_items(state):
            production = augmented[prod_index]
            if prod_index == 0:
                continue  # $accept item; accept handled via $end shift
            for terminal in follow[production.lhs]:
                reduce_candidates.setdefault(terminal, []).append(prod_index)

        for terminal, candidates in reduce_candidates.items():
            chosen, record = _resolve(
                state, terminal, state_actions.get(terminal), candidates, augmented
            )
            if record is not None:
                conflicts.append(record)
            if chosen is not None:
                if isinstance(chosen, Reduce) and chosen.is_ambiguous:
                    ambiguous += 1
                state_actions[terminal] = chosen

        actions.append(state_actions)
        gotos.append(state_gotos)

    elapsed = time.perf_counter() - started
    stats = TableStats(
        states=automaton.state_count,
        action_entries=sum(len(row) for row in actions),
        goto_entries=sum(len(row) for row in gotos),
        shift_reduce_resolved=sum(
            1 for c in conflicts if c.kind is ConflictKind.SHIFT_REDUCE
        ),
        reduce_reduce_resolved=sum(
            1 for c in conflicts if c.kind is ConflictKind.REDUCE_REDUCE
        ),
        ambiguous_reduces=ambiguous,
        build_seconds=elapsed,
    )
    return ParseTables(augmented, automaton, actions, gotos, conflicts, stats)


def _resolve(
    state: int,
    terminal: str,
    existing: Optional[Action],
    candidates: List[int],
    grammar: Grammar,
) -> Tuple[Optional[Action], Optional[ConflictRecord]]:
    """Apply the Graham-Glanville disambiguation rules at one table cell."""
    # Reduce/reduce: keep the longest rules; ties stay in the table.
    if len(candidates) > 1:
        longest = max(len(grammar[p].rhs) for p in candidates)
        winners = tuple(
            sorted(p for p in candidates if len(grammar[p].rhs) == longest)
        )
        losers = tuple(
            sorted(p for p in candidates if len(grammar[p].rhs) != longest)
        )
        reduce_action = Reduce(winners)
        record = ConflictRecord(
            ConflictKind.REDUCE_REDUCE, state, terminal, reduce_action, losers
        ) if losers or len(winners) > 1 else None
    else:
        reduce_action = Reduce((candidates[0],))
        record = None

    # Shift/reduce: the shift (or accept) always wins.
    if isinstance(existing, (Shift, Accept)):
        return None, ConflictRecord(
            ConflictKind.SHIFT_REDUCE, state, terminal, existing,
            reduce_action.productions,
        )
    return reduce_action, record
