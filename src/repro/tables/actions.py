"""Parse-table action representation and conflict records.

The Graham-Glanville disambiguation (section 3.2): shift wins every
shift/reduce conflict, the longest rule wins every reduce/reduce conflict,
and if two or more longest rules tie, "the table generator cannot
statically choose among them" — the tie is recorded in the table and the
pattern matcher chooses dynamically using semantic attributes.  A
:class:`Reduce` action therefore carries a *tuple* of production indices:
almost always one, occasionally several.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class Shift:
    state: int

    def __repr__(self) -> str:
        return f"s{self.state}"


@dataclass(frozen=True)
class Reduce:
    productions: Tuple[int, ...]  # tied longest rules; matcher picks at runtime

    def __post_init__(self) -> None:
        if not self.productions:
            raise ValueError("Reduce needs at least one production")

    @property
    def production(self) -> int:
        """The statically preferred production (first of the tie set)."""
        return self.productions[0]

    @property
    def is_ambiguous(self) -> bool:
        return len(self.productions) > 1

    def __repr__(self) -> str:
        inner = "/".join(f"r{p}" for p in self.productions)
        return inner


@dataclass(frozen=True)
class Accept:
    def __repr__(self) -> str:
        return "acc"


Action = Union[Shift, Reduce, Accept]


class ConflictKind(enum.Enum):
    SHIFT_REDUCE = "shift/reduce"
    REDUCE_REDUCE = "reduce/reduce"


@dataclass(frozen=True)
class ConflictRecord:
    """One statically resolved (or tied) conflict, for diagnostics and the
    E4 experiment's table-pressure measurements."""

    kind: ConflictKind
    state: int
    symbol: str
    chosen: Action
    rejected: Tuple[int, ...]  # production indices not chosen

    def __str__(self) -> str:
        rejected = ", ".join(f"r{p}" for p in self.rejected)
        return (
            f"{self.kind.value} in state {self.state} on {self.symbol!r}: "
            f"chose {self.chosen!r}, rejected [{rejected}]"
        )
