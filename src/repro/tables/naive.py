"""The deliberately slow table constructor — CGGWS vintage.

Section 7: "it required over two memory-intensive hours of VAX 11/780 CPU
time to construct a new set of tables from the enormous machine
description grammar. ... Subsequently, we have developed new techniques
which speed up the table constructor dramatically" (two hours down to ten
minutes, section 9).  Experiment E5 reproduces that *shape* by pitting
this constructor against :mod:`repro.tables.lr0`.

This implementation is correct but does everything the slow way, as early
LALR-era tools did:

* closures are computed by a global fixpoint that rescans **every**
  production of the grammar on every iteration (no LHS index);
* item sets are kept as sorted tuples and states are deduplicated by
  **linear search** with full set comparison (no hashing);
* every state's closure is recomputed from its kernel each time the state
  is re-encountered as a GOTO target.

It must produce the identical automaton (same states, same transitions,
modulo state numbering by discovery order, which we keep identical by
using the same worklist order).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import is_nonterminal
from .lr0 import Automaton, Item, Kernel


def build_automaton_naive(grammar: Grammar) -> Automaton:
    """LR(0) canonical collection, the slow way.  Same result as
    :func:`repro.tables.lr0.build_automaton` on the augmented grammar."""
    kernels: List[Kernel] = []
    closures: List[Tuple[Item, ...]] = []
    transitions: List[Dict[str, int]] = []

    def find_state(kernel: Kernel) -> int:
        # Linear search over all existing states: O(states) per lookup.
        for index in range(len(kernels)):
            if _same_item_set(kernels[index], kernel):
                return index
        return -1

    def add_state(kernel: Kernel) -> int:
        kernels.append(kernel)
        closures.append(tuple(sorted(_closure_naive(kernel, grammar))))
        transitions.append({})
        return len(kernels) - 1

    add_state(frozenset({(0, 0)}))
    frontier = [0]
    while frontier:
        state = frontier.pop()
        # Recompute the closure from the kernel (ignoring the cache) to
        # mimic the original's repeated work.
        closure = _closure_naive(kernels[state], grammar)
        successors: Dict[str, Set[Item]] = {}
        for prod_index, dot in closure:
            rhs = grammar[prod_index].rhs
            if dot < len(rhs):
                successors.setdefault(rhs[dot], set()).add((prod_index, dot + 1))
        for symbol in sorted(successors):
            kernel = frozenset(successors[symbol])
            target = find_state(kernel)
            if target < 0:
                target = add_state(kernel)
                frontier.append(target)
            transitions[state][symbol] = target

    return Automaton(grammar, kernels, closures, transitions)


def _closure_naive(kernel: Kernel, grammar: Grammar) -> Set[Item]:
    """Closure by global fixpoint: rescan the whole grammar until no item
    can be added.  O(iterations x productions x items)."""
    items: Set[Item] = set(kernel)
    changed = True
    while changed:
        changed = False
        wanted_nts = set()
        for prod_index, dot in items:
            rhs = grammar[prod_index].rhs
            if dot < len(rhs) and is_nonterminal(rhs[dot]):
                wanted_nts.add(rhs[dot])
        for index, production in enumerate(grammar.productions):
            if production.lhs in wanted_nts:
                item = (index, 0)
                if item not in items:
                    items.add(item)
                    changed = True
    return items


def _same_item_set(left: Kernel, right: Kernel) -> bool:
    """Set equality via sorted-list comparison, as a struct-of-arrays
    implementation without hashing would do it."""
    return sorted(left) == sorted(right)
