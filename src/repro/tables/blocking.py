"""Syntactic-block detection (sections 3.2 and 6.2.2).

A *syntactic block* is a parser configuration in which a legal input
symbol has the error action: the matcher would die on a well-formed
expression tree.  "The present table generator only notifies the user,
and does not attempt corrective action" — the user then adds *bridge
productions* sharing left context past the block.  We reproduce the
notify-only behaviour.

What counts as a "legal next symbol"?  The input language is the set of
prefix linearizations of expression trees produced by front ends that
"rarely generate the conversion operators" — so wherever the pattern
grammar expects an *operand* (the dot precedes an operand non-terminal),
the input may present **any** operand-starting terminal of any machine
type, not just those in the non-terminal's FIRST set.  We therefore flag,
for every state expecting an operand, each operand-starter terminal that
has no action.  Structural positions (a ``Label`` after a branch, the
second kid of an ``Assign``) only expect their FIRST sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set

from ..grammar.analyses import first_sets
from ..grammar.symbols import END, START, is_nonterminal
from .slr import ParseTables


@dataclass(frozen=True)
class BlockReport:
    """One potential syntactic block: a state that should accept *symbol*
    (because it is expecting an operand there) but has only the error
    action."""

    state: int
    symbol: str
    expecting: FrozenSet[str]  # the operand non-terminals whose slot this is

    def __str__(self) -> str:
        slots = ", ".join(sorted(self.expecting))
        return (
            f"state {self.state} blocks on {self.symbol!r} "
            f"(expecting an operand for: {slots})"
        )


def operand_starter_terminals(tables: ParseTables) -> Set[str]:
    """All terminals that can begin an operand subtree *somewhere* in the
    grammar — the union of FIRST over the operand non-terminals.

    This is the grammar-relative input alphabet: a state expecting an
    operand must act on every terminal that any *other* operand context
    accepts, otherwise the front end can produce a tree that parses
    elsewhere but blocks here.
    """
    grammar = tables.grammar
    first = first_sets(grammar)
    starters: Set[str] = set()
    for nt in grammar.nonterminals:
        if nt == START or nt == grammar[0].rhs[0]:
            continue  # skip the sentential symbol: statements are not operands
        starters |= set(first.get(nt, frozenset()))
    starters.discard(END)
    return starters


def find_blocks(
    tables: ParseTables,
    input_alphabet: Iterable[str] = (),
) -> List[BlockReport]:
    """Report every (state, terminal) pair that may syntactically block.

    ``input_alphabet`` optionally widens the operand-starter set to the
    full front-end alphabet (every operator x type the IR can produce);
    by default the grammar-relative set is used.
    """
    grammar = tables.grammar
    automaton = tables.automaton
    first = first_sets(grammar)
    starters = operand_starter_terminals(tables) | set(input_alphabet)
    sentential = grammar[0].rhs[0]  # the real start symbol

    reports: List[BlockReport] = []
    for state in range(automaton.state_count):
        expecting_operand: Dict[str, Set[str]] = {}
        for prod_index, dot in automaton.closures[state]:
            rhs = grammar[prod_index].rhs
            if dot == 0 or dot >= len(rhs):
                # dot==0 items are the closure's own expansion of some
                # operand slot; the slot itself is recorded at the item
                # that put the non-terminal after its dot.
                continue
            successor = rhs[dot]
            if is_nonterminal(successor) and successor != sentential:
                for terminal in starters:
                    if terminal not in first.get(successor, frozenset()):
                        expecting_operand.setdefault(terminal, set()).add(successor)

        if not expecting_operand:
            continue
        row = tables.actions[state]
        for terminal, slots in sorted(expecting_operand.items()):
            if terminal not in row:
                reports.append(
                    BlockReport(state, terminal, frozenset(slots))
                )
    return reports


def summarize_blocks(reports: List[BlockReport]) -> str:
    """A compact, user-facing notification (the constructor only notifies)."""
    if not reports:
        return "no syntactic blocks detected"
    by_symbol: Dict[str, int] = {}
    for report in reports:
        by_symbol[report.symbol] = by_symbol.get(report.symbol, 0) + 1
    lines = [f"{len(reports)} potential syntactic blocks in "
             f"{len({r.state for r in reports})} states:"]
    for symbol, count in sorted(by_symbol.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {symbol}: {count} states")
    return "\n".join(lines)
