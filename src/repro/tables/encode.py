"""Packed table encoding and size accounting.

The paper complains that the CGGWS "produced tables that were too large"
and that the matcher "spent too much time ... unpacking the description
tables"; experiment E4 reports table growth (+60% from reversed
operators).  This module gives tables a concrete packed form so those
sizes mean something: symbols are interned to dense integers, each state's
action row becomes a sorted array of (symbol, action) pairs with an
optional *default reduce* squeezed out, and the whole thing reports its
size in entries and in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .actions import Accept, Action, Reduce, Shift
from .slr import ParseTables

# Action words are packed as (tag, argument) integer pairs.
TAG_SHIFT = 0
TAG_REDUCE = 1       # argument indexes the reduce-set pool
TAG_ACCEPT = 2


@dataclass
class PackedTables:
    """A compact, array-based rendering of :class:`ParseTables`.

    ``action_rows[s]`` is a sorted list of ``(symbol_id, tag, argument)``
    triples; ``default_reduce[s]`` (-1 when absent) is applied when a
    symbol misses the row, which is how row compression removes the most
    common reduce from each row.  ``goto_rows[s]`` is the same for
    non-terminals, shifts only.  ``reduce_pool`` holds the (possibly
    ambiguous) reduce sets.
    """

    symbol_ids: Dict[str, int]
    action_rows: List[List[Tuple[int, int, int]]]
    default_reduce: List[int]
    goto_rows: List[List[Tuple[int, int]]]
    reduce_pool: List[Tuple[int, ...]]

    @property
    def entry_count(self) -> int:
        return (
            sum(len(row) for row in self.action_rows)
            + sum(len(row) for row in self.goto_rows)
            + sum(1 for d in self.default_reduce if d >= 0)
        )

    @property
    def byte_size(self) -> int:
        """Size assuming 16-bit symbol ids and arguments, 8-bit tags."""
        action_bytes = sum(len(row) for row in self.action_rows) * 5
        goto_bytes = sum(len(row) for row in self.goto_rows) * 4
        default_bytes = len(self.default_reduce) * 2
        pool_bytes = sum(len(s) for s in self.reduce_pool) * 2
        return action_bytes + goto_bytes + default_bytes + pool_bytes

    def lookup_action(self, state: int, symbol: str) -> Optional[Tuple[int, int]]:
        """Binary-search the packed row; returns (tag, argument) or the
        default reduce or None."""
        symbol_id = self.symbol_ids.get(symbol)
        if symbol_id is None:
            default = self.default_reduce[state]
            return (TAG_REDUCE, default) if default >= 0 else None
        row = self.action_rows[state]
        lo, hi = 0, len(row)
        while lo < hi:
            mid = (lo + hi) // 2
            if row[mid][0] < symbol_id:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(row) and row[lo][0] == symbol_id:
            return row[lo][1], row[lo][2]
        default = self.default_reduce[state]
        return (TAG_REDUCE, default) if default >= 0 else None


def pack_tables(tables: ParseTables, compress_rows: bool = True) -> PackedTables:
    """Intern symbols and pack every action/goto row.

    With ``compress_rows``, the most frequent reduce action of each row
    becomes that row's default, and its explicit entries are dropped.
    Correctness is preserved for the matcher because a default reduce on a
    symbol the row never mentioned either leads to further progress or to
    an error discovered one step later — the standard LR row-compression
    argument; error *reporting* just gets slightly later, never wrong code.
    """
    symbol_ids: Dict[str, int] = {}

    def intern(symbol: str) -> int:
        if symbol not in symbol_ids:
            symbol_ids[symbol] = len(symbol_ids)
        return symbol_ids[symbol]

    reduce_pool: List[Tuple[int, ...]] = []
    pool_index: Dict[Tuple[int, ...], int] = {}

    def intern_reduce(productions: Tuple[int, ...]) -> int:
        if productions not in pool_index:
            pool_index[productions] = len(reduce_pool)
            reduce_pool.append(productions)
        return pool_index[productions]

    action_rows: List[List[Tuple[int, int, int]]] = []
    default_reduce: List[int] = []
    goto_rows: List[List[Tuple[int, int]]] = []

    for state in range(len(tables.actions)):
        entries: List[Tuple[int, int, int]] = []
        reduce_counts: Dict[int, int] = {}
        for symbol, action in tables.actions[state].items():
            if isinstance(action, Reduce):
                pooled = intern_reduce(action.productions)
                reduce_counts[pooled] = reduce_counts.get(pooled, 0) + 1

        default = -1
        if compress_rows and reduce_counts:
            default = max(reduce_counts, key=lambda k: reduce_counts[k])

        for symbol, action in tables.actions[state].items():
            encoded = _encode(action, intern_reduce)
            if encoded[0] == TAG_REDUCE and encoded[1] == default:
                continue
            entries.append((intern(symbol), encoded[0], encoded[1]))
        entries.sort()
        action_rows.append(entries)
        default_reduce.append(default)

        gotos = sorted(
            (intern(symbol), target)
            for symbol, target in tables.gotos[state].items()
        )
        goto_rows.append(gotos)

    return PackedTables(symbol_ids, action_rows, default_reduce, goto_rows, reduce_pool)


def _encode(action: Action, intern_reduce) -> Tuple[int, int]:
    if isinstance(action, Shift):
        return TAG_SHIFT, action.state
    if isinstance(action, Reduce):
        return TAG_REDUCE, intern_reduce(action.productions)
    if isinstance(action, Accept):
        return TAG_ACCEPT, 0
    raise TypeError(f"unknown action {action!r}")


@dataclass(frozen=True)
class SizeReport:
    """Uncompressed vs compressed sizes, the E4 'size of the tables' metric."""

    states: int
    dense_entries: int       # states x symbols, the flat-matrix baseline
    sparse_entries: int      # explicit actions + gotos, no compression
    packed_entries: int      # after default-reduce row compression
    packed_bytes: int

    def __str__(self) -> str:
        return (
            f"{self.states} states; dense {self.dense_entries} entries, "
            f"sparse {self.sparse_entries}, packed {self.packed_entries} "
            f"({self.packed_bytes} bytes)"
        )


def measure_tables(tables: ParseTables) -> SizeReport:
    symbols = len(tables.grammar.terminals) + len(tables.grammar.nonterminals)
    packed = pack_tables(tables)
    return SizeReport(
        states=len(tables.actions),
        dense_entries=len(tables.actions) * symbols,
        sparse_entries=tables.stats.total_entries,
        packed_entries=packed.entry_count,
        packed_bytes=packed.byte_size,
    )
