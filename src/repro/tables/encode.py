"""Packed table encoding and size accounting.

The paper complains that the CGGWS "produced tables that were too large"
and that the matcher "spent too much time ... unpacking the description
tables"; experiment E4 reports table growth (+60% from reversed
operators).  This module gives tables a concrete packed form so those
sizes mean something: symbols are interned to dense integers, each state's
action row becomes a sorted array of (symbol, action) pairs with an
optional *default reduce* squeezed out, and the whole thing reports its
size in entries and in bytes.

The packed form is also the matcher's *live* representation: alongside the
rows it carries the per-production metadata (interned LHS ids, RHS
lengths) the shift/reduce loop needs, so one token stream can be interned
once and then parsed entirely on integer comparisons — no per-step string
hashing against the dict tables.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .actions import Accept, Action, Reduce, Shift
from .slr import ParseTables

# Action words are packed as (tag, argument) integer pairs.
TAG_SHIFT = 0
TAG_REDUCE = 1       # argument indexes the reduce-set pool
TAG_ACCEPT = 2


@dataclass
class PackedTables:
    """A compact, array-based rendering of :class:`ParseTables`.

    ``action_rows[s]`` is a sorted list of ``(symbol_id, tag, argument)``
    triples; ``default_reduce[s]`` (-1 when absent) is applied when a
    symbol misses the row, which is how row compression removes the most
    common reduce from each row.  ``goto_rows[s]`` is the same for
    non-terminals, shifts only.  ``reduce_pool`` holds the (possibly
    ambiguous) reduce sets.

    ``prod_lhs_id[p]`` / ``prod_rhs_len[p]`` mirror the (augmented)
    grammar's productions so a reduce step never touches a Production
    object just to pop the stack and take the goto.  They are grammar-side
    metadata, not table entries, and do not count toward
    :attr:`entry_count` / :attr:`byte_size` (the E4 size metrics).
    """

    symbol_ids: Dict[str, int]
    action_rows: List[List[Tuple[int, int, int]]]
    default_reduce: List[int]
    goto_rows: List[List[Tuple[int, int]]]
    reduce_pool: List[Tuple[int, ...]]
    prod_lhs_id: List[int] = field(default_factory=list)
    prod_rhs_len: List[int] = field(default_factory=list)
    _runtime: Optional["PackedRuntime"] = field(
        default=None, repr=False, compare=False
    )
    #: Memoized compiled-matcher program (or False after a failed build);
    #: runtime-only, like ``_runtime`` — never pickled into the cache.
    _compiled: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    @property
    def entry_count(self) -> int:
        return (
            sum(len(row) for row in self.action_rows)
            + sum(len(row) for row in self.goto_rows)
            + sum(1 for d in self.default_reduce if d >= 0)
        )

    @property
    def byte_size(self) -> int:
        """Size assuming 16-bit symbol ids and arguments, 8-bit tags."""
        action_bytes = sum(len(row) for row in self.action_rows) * 5
        goto_bytes = sum(len(row) for row in self.goto_rows) * 4
        default_bytes = len(self.default_reduce) * 2
        pool_bytes = sum(len(s) for s in self.reduce_pool) * 2
        return action_bytes + goto_bytes + default_bytes + pool_bytes

    def lookup_action(self, state: int, symbol: str) -> Optional[Tuple[int, int]]:
        """Binary-search the packed row; returns (tag, argument) or the
        default reduce or None."""
        symbol_id = self.symbol_ids.get(symbol)
        if symbol_id is None:
            default = self.default_reduce[state]
            return (TAG_REDUCE, default) if default >= 0 else None
        row = self.action_rows[state]
        lo, hi = 0, len(row)
        while lo < hi:
            mid = (lo + hi) // 2
            if row[mid][0] < symbol_id:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(row) and row[lo][0] == symbol_id:
            return row[lo][1], row[lo][2]
        default = self.default_reduce[state]
        return (TAG_REDUCE, default) if default >= 0 else None

    # -------------------------------------------------- integer fast path
    def intern_stream(self, symbols: Sequence[str]) -> List[int]:
        """Intern a token-symbol stream once; unknown symbols become -1
        (they can only hit a row's default reduce or the error action)."""
        get = self.symbol_ids.get
        return [get(symbol, -1) for symbol in symbols]

    def lookup_action_id(self, state: int, symbol_id: int) -> Tuple[int, int]:
        """Like :meth:`lookup_action` but takes an interned id and returns
        ``(-1, -1)`` for the error action instead of None."""
        if symbol_id >= 0:
            row = self.action_rows[state]
            lo, hi = 0, len(row)
            while lo < hi:
                mid = (lo + hi) >> 1
                if row[mid][0] < symbol_id:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < len(row) and row[lo][0] == symbol_id:
                entry = row[lo]
                return entry[1], entry[2]
        default = self.default_reduce[state]
        return (TAG_REDUCE, default) if default >= 0 else (-1, -1)

    def lookup_goto_id(self, state: int, symbol_id: int) -> int:
        """Binary-search the packed goto row; -1 when there is no goto."""
        row = self.goto_rows[state]
        lo, hi = 0, len(row)
        while lo < hi:
            mid = (lo + hi) >> 1
            if row[mid][0] < symbol_id:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(row) and row[lo][0] == symbol_id:
            return row[lo][1]
        return -1

    def runtime(self) -> "PackedRuntime":
        """The dense-row expansion driving the matcher, built once and
        memoized.  This is the one deliberate unpack-per-process: the
        paper's complaint is about unpacking *per lookup*, so we expand
        the compressed rows into flat ``state x symbol`` int arrays a
        single time and index them ever after."""
        if self._runtime is None:
            self._runtime = PackedRuntime.from_packed(self)
        return self._runtime

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_runtime"] = None  # dense expansion is rebuilt, not stored
        state["_compiled"] = None  # generated matcher is rebuilt/reloaded
        return state


@dataclass
class PackedRuntime:
    """Flat integer matrices derived from :class:`PackedTables`.

    ``action_words[state * nsymbols + symbol_id]`` is ``-1`` for the error
    action or ``(argument << 2) | tag`` with each row's default reduce
    already folded into every unmentioned symbol.  ``default_words[state]``
    answers for symbols outside the grammar (interned to -1).
    ``goto_words`` is the same matrix for gotos (targets, -1 when absent);
    ``pool_single[i]`` is the lone production of reduce-pool entry *i* or
    -1 when the entry is an ambiguous tie.  Runtime-only: never pickled
    into the table cache, never counted by the E4 size metrics.
    """

    nsymbols: int
    action_words: List[int]
    default_words: List[int]
    goto_words: List[int]
    pool_single: List[int]
    checksum: int = -1

    def compute_checksum(self) -> int:
        """CRC-32 over the flat matrices (cheap: one bytes() pass each).

        Stamped at expansion time; :meth:`verify_integrity` recomputes it
        so the resilient pipeline can detect in-memory corruption of the
        dense rows *before* they silently select wrong instructions —
        corrupt action words often still parse, just wrongly.
        """
        crc = 0
        for words in (
            self.action_words, self.default_words,
            self.goto_words, self.pool_single,
        ):
            crc = zlib.crc32(
                b"".join(
                    w.to_bytes(4, "little", signed=True) for w in words
                ),
                crc,
            )
        return zlib.crc32(self.nsymbols.to_bytes(4, "little"), crc)

    def verify_integrity(self) -> bool:
        """True when the matrices still match their expansion-time CRC."""
        if self.checksum < 0:
            return True  # never stamped (hand-built in tests)
        return self.compute_checksum() == self.checksum

    @classmethod
    def from_packed(cls, packed: "PackedTables") -> "PackedRuntime":
        nsymbols = len(packed.symbol_ids)
        states = len(packed.action_rows)
        action_words = [-1] * (states * nsymbols)
        goto_words = [-1] * (states * nsymbols)
        default_words = [-1] * states

        for state in range(states):
            base = state * nsymbols
            default = packed.default_reduce[state]
            if default >= 0:
                word = (default << 2) | TAG_REDUCE
                default_words[state] = word
                for offset in range(nsymbols):
                    action_words[base + offset] = word
            for symbol_id, tag, argument in packed.action_rows[state]:
                action_words[base + symbol_id] = (argument << 2) | tag
            for symbol_id, target in packed.goto_rows[state]:
                goto_words[base + symbol_id] = target

        pool_single = [
            productions[0] if len(productions) == 1 else -1
            for productions in packed.reduce_pool
        ]
        runtime = cls(
            nsymbols, action_words, default_words, goto_words, pool_single
        )
        runtime.checksum = runtime.compute_checksum()
        return runtime


def pack_tables(tables: ParseTables, compress_rows: bool = True) -> PackedTables:
    """Intern symbols and pack every action/goto row.

    With ``compress_rows``, the most frequent reduce action of each row
    becomes that row's default, and its explicit entries are dropped.
    Correctness is preserved for the matcher because a default reduce on a
    symbol the row never mentioned either leads to further progress or to
    an error discovered one step later — the standard LR row-compression
    argument; error *reporting* just gets slightly later, never wrong code.
    """
    symbol_ids: Dict[str, int] = {}

    def intern(symbol: str) -> int:
        if symbol not in symbol_ids:
            symbol_ids[symbol] = len(symbol_ids)
        return symbol_ids[symbol]

    reduce_pool: List[Tuple[int, ...]] = []
    pool_index: Dict[Tuple[int, ...], int] = {}

    def intern_reduce(productions: Tuple[int, ...]) -> int:
        if productions not in pool_index:
            pool_index[productions] = len(reduce_pool)
            reduce_pool.append(productions)
        return pool_index[productions]

    action_rows: List[List[Tuple[int, int, int]]] = []
    default_reduce: List[int] = []
    goto_rows: List[List[Tuple[int, int]]] = []

    for state in range(len(tables.actions)):
        entries: List[Tuple[int, int, int]] = []
        reduce_counts: Dict[int, int] = {}
        for symbol, action in tables.actions[state].items():
            if isinstance(action, Reduce):
                pooled = intern_reduce(action.productions)
                reduce_counts[pooled] = reduce_counts.get(pooled, 0) + 1

        default = -1
        if compress_rows and reduce_counts:
            default = max(reduce_counts, key=lambda k: reduce_counts[k])

        for symbol, action in tables.actions[state].items():
            encoded = _encode(action, intern_reduce)
            if encoded[0] == TAG_REDUCE and encoded[1] == default:
                continue
            entries.append((intern(symbol), encoded[0], encoded[1]))
        entries.sort()
        action_rows.append(entries)
        default_reduce.append(default)

        gotos = sorted(
            (intern(symbol), target)
            for symbol, target in tables.gotos[state].items()
        )
        goto_rows.append(gotos)

    prod_lhs_id = [intern(p.lhs) for p in tables.grammar.productions]
    prod_rhs_len = [len(p.rhs) for p in tables.grammar.productions]

    return PackedTables(
        symbol_ids, action_rows, default_reduce, goto_rows, reduce_pool,
        prod_lhs_id, prod_rhs_len,
    )


def _encode(action: Action, intern_reduce) -> Tuple[int, int]:
    if isinstance(action, Shift):
        return TAG_SHIFT, action.state
    if isinstance(action, Reduce):
        return TAG_REDUCE, intern_reduce(action.productions)
    if isinstance(action, Accept):
        return TAG_ACCEPT, 0
    raise TypeError(f"unknown action {action!r}")


# ---------------------------------------------------------- compaction
#
# The compiled matcher (repro.tables.compiled) does not interpret tagged
# action words; it runs over a *compacted* rendering built here:
#
# * every state's action row becomes one dense tuple of length
#   ``nsymbols + 1`` with the row's default reduce folded into every
#   unmentioned slot AND into the extra ``[-1]`` slot, so a symbol
#   interned to -1 (outside the grammar) lands on the default with no
#   branch at all;
# * identical rows are merged — the VAX tables share well over a third
#   of their 759 rows — and likewise identical goto columns;
# * action words trade the packed ``(arg << 2) | tag`` encoding for a
#   branch-shaped one: error is -1, accept is -2, a shift is the even
#   word ``target << 1`` and a reduce the odd word ``(pool << 1) | 1``,
#   so the generated loop classifies a word with one sign test and one
#   parity test, reduces first (chain reductions dominate, E8);
# * per-pool metadata (RHS length, production index, goto column) is
#   precomputed so an unambiguous reduce never touches a Production
#   object or a second lookup table.

#: Compact action words (distinct from the packed TAG_* encoding).
COMPACT_ERROR = -1
COMPACT_ACCEPT = -2


class CompactionError(ValueError):
    """The tables cannot be compacted (e.g. an epsilon production, which
    neither integer loop supports); callers fall back to packed."""


@dataclass(frozen=True)
class CompactionReport:
    """What the compaction pass saved, for ``SizeReport`` and benches.

    ``dense_words`` is the flat-matrix baseline the packed runtime
    expands to (action + goto matrices, defaults, pool singles);
    ``compact_words`` is what the merged rows/columns plus the pool
    metadata actually hold.
    """

    states: int
    nsymbols: int
    unique_action_rows: int
    unique_goto_columns: int
    dense_words: int
    compact_words: int
    frequency_guided: bool = False

    @property
    def compact_bytes(self) -> int:
        """Size at 32-bit words, the same unit the runtime matrices use."""
        return self.compact_words * 4

    @property
    def saved_fraction(self) -> float:
        if not self.dense_words:
            return 0.0
        return 1.0 - self.compact_words / self.dense_words


@dataclass
class CompactedTables:
    """Row/column-merged tables in the compiled matcher's encoding.

    ``rows[row_of_state[s]][sym]`` is the compact action word for
    ``(s, sym)`` (slot ``nsymbols``, reachable as index -1, holds the
    default).  ``goto_cols[goto_col_of_lhs[lhs_id]][s]`` is the goto
    target (-1 when absent).  ``pool_len``/``pool_prod``/``pool_goto``
    describe each reduce-pool entry (length 0 and production -1 mark an
    ambiguous tie, resolved through ``pool_tied`` on a slow path).
    """

    nsymbols: int
    start_state: int
    row_of_state: Tuple[int, ...]
    rows: Tuple[Tuple[int, ...], ...]
    goto_cols: Tuple[Tuple[int, ...], ...]
    goto_col_of_lhs: Dict[int, int]
    pool_len: Tuple[int, ...]
    pool_prod: Tuple[int, ...]
    pool_goto: Tuple[int, ...]          # index into goto_cols, -1 when none
    pool_tied: Tuple[Tuple[int, ...], ...]
    report: CompactionReport

    @property
    def nstates(self) -> int:
        return len(self.row_of_state)

    def action_word(self, state: int, symbol_id: int) -> int:
        """Compact word for (state, symbol); -1-interned symbols take the
        folded default slot exactly like the generated loop does."""
        return self.rows[self.row_of_state[state]][symbol_id]


def compact_tables(
    packed: PackedTables,
    frequencies: Optional[Mapping[int, int]] = None,
    start_state: int = 0,
) -> CompactedTables:
    """Merge rows/columns and re-encode *packed* for the compiled matcher.

    *frequencies* (production index -> observed reduce count, e.g. drained
    from the obs registry over the fuzz corpus) optionally guides layout:
    hot reduce pools take the low word values and hot shared rows are
    emitted first.  Layout never changes behaviour — only emission order
    and word numbering — but it is part of the compiled cache key.
    """
    nsymbols = len(packed.symbol_ids)
    nstates = len(packed.action_rows)
    npool = len(packed.reduce_pool)

    # Reduce-pool renumbering (hot-first under frequency guidance).
    order = list(range(npool))
    if frequencies:
        weight = [
            sum(frequencies.get(index, 0) for index in tied)
            for tied in packed.reduce_pool
        ]
        order.sort(key=lambda p: (-weight[p], p))
    new_pool = {old: new for new, old in enumerate(order)}
    pool_tied = tuple(packed.reduce_pool[old] for old in order)

    # Dense action rows with the default folded in; identical rows merge.
    row_index: Dict[Tuple[int, ...], int] = {}
    rows: List[Tuple[int, ...]] = []
    row_of_state: List[int] = []
    for state in range(nstates):
        default = packed.default_reduce[state]
        default_word = (
            (new_pool[default] << 1) | 1 if default >= 0 else COMPACT_ERROR
        )
        row = [default_word] * (nsymbols + 1)
        for symbol_id, tag, argument in packed.action_rows[state]:
            if tag == TAG_SHIFT:
                row[symbol_id] = argument << 1
            elif tag == TAG_REDUCE:
                row[symbol_id] = (new_pool[argument] << 1) | 1
            else:
                row[symbol_id] = COMPACT_ACCEPT
        key = tuple(row)
        index = row_index.get(key)
        if index is None:
            index = row_index[key] = len(rows)
            rows.append(key)
        row_of_state.append(index)

    # Goto columns per LHS symbol; identical columns merge too.
    columns: Dict[int, List[int]] = {}
    for state in range(nstates):
        for symbol_id, target in packed.goto_rows[state]:
            column = columns.get(symbol_id)
            if column is None:
                column = columns[symbol_id] = [-1] * nstates
            column[state] = target
    col_index: Dict[Tuple[int, ...], int] = {}
    goto_cols: List[Tuple[int, ...]] = []
    goto_col_of_lhs: Dict[int, int] = {}
    for symbol_id in sorted(columns):
        key = tuple(columns[symbol_id])
        index = col_index.get(key)
        if index is None:
            index = col_index[key] = len(goto_cols)
            goto_cols.append(key)
        goto_col_of_lhs[symbol_id] = index

    # Per-pool reduce metadata (0-length marks the ambiguous slow path,
    # which is why epsilon productions cannot ride the fast loop).
    pool_len = [0] * npool
    pool_prod = [-1] * npool
    pool_goto = [-1] * npool
    for new, tied in enumerate(pool_tied):
        if len(tied) != 1:
            continue
        index = tied[0]
        length = packed.prod_rhs_len[index]
        if length == 0:
            raise CompactionError(
                f"production {index} has an empty RHS; the compiled "
                f"matcher (like the packed loop) requires non-epsilon "
                f"productions"
            )
        pool_len[new] = length
        pool_prod[new] = index
        pool_goto[new] = goto_col_of_lhs.get(packed.prod_lhs_id[index], -1)

    # Frequency-guided row emission order: rows reached by more states
    # (weighted by their default pool's heat) come first in the generated
    # source.  Pure layout — row identity is untouched.
    if frequencies:
        sharing = [0] * len(rows)
        for index in row_of_state:
            sharing[index] += 1
        emit_order = sorted(
            range(len(rows)), key=lambda r: (-sharing[r], r)
        )
        remap = {old: new for new, old in enumerate(emit_order)}
        rows = [rows[old] for old in emit_order]
        row_of_state = [remap[index] for index in row_of_state]

    dense_words = 2 * nstates * nsymbols + nstates + npool
    compact_words = (
        len(rows) * (nsymbols + 1)
        + len(goto_cols) * nstates
        + nstates                      # row_of_state
        + 3 * npool                    # pool_len/prod/goto
    )
    report = CompactionReport(
        states=nstates,
        nsymbols=nsymbols,
        unique_action_rows=len(rows),
        unique_goto_columns=len(goto_cols),
        dense_words=dense_words,
        compact_words=compact_words,
        frequency_guided=bool(frequencies),
    )
    return CompactedTables(
        nsymbols=nsymbols,
        start_state=start_state,
        row_of_state=tuple(row_of_state),
        rows=tuple(rows),
        goto_cols=tuple(goto_cols),
        goto_col_of_lhs=goto_col_of_lhs,
        pool_len=tuple(pool_len),
        pool_prod=tuple(pool_prod),
        pool_goto=tuple(pool_goto),
        pool_tied=pool_tied,
        report=report,
    )


@dataclass(frozen=True)
class SizeReport:
    """Uncompressed vs compressed sizes, the E4 'size of the tables' metric.

    The ``compact_*`` fields report the *post-compaction* representation
    the compiled matcher runs on (merged rows/columns, folded defaults) —
    the numbers ``ggcc profile`` and BENCH_parse surface so the
    compaction win is visible next to the packed sizes.
    """

    states: int
    dense_entries: int       # states x symbols, the flat-matrix baseline
    sparse_entries: int      # explicit actions + gotos, no compression
    packed_entries: int      # after default-reduce row compression
    packed_bytes: int
    compact_rows: int = 0          # unique action rows after merging
    compact_goto_columns: int = 0  # unique goto columns after merging
    compact_entries: int = 0       # words in the compacted representation
    compact_bytes: int = 0

    def __str__(self) -> str:
        text = (
            f"{self.states} states; dense {self.dense_entries} entries, "
            f"sparse {self.sparse_entries}, packed {self.packed_entries} "
            f"({self.packed_bytes} bytes)"
        )
        if self.compact_entries:
            text += (
                f"; compacted {self.compact_rows} rows + "
                f"{self.compact_goto_columns} goto cols, "
                f"{self.compact_entries} words "
                f"({self.compact_bytes} bytes)"
            )
        return text


def measure_tables(tables: ParseTables) -> SizeReport:
    symbols = len(tables.grammar.terminals) + len(tables.grammar.nonterminals)
    packed = pack_tables(tables)
    try:
        compaction = compact_tables(packed).report
    except CompactionError:
        compaction = None
    return SizeReport(
        states=len(tables.actions),
        dense_entries=len(tables.actions) * symbols,
        sparse_entries=tables.stats.total_entries,
        packed_entries=packed.entry_count,
        packed_bytes=packed.byte_size,
        compact_rows=compaction.unique_action_rows if compaction else 0,
        compact_goto_columns=(
            compaction.unique_goto_columns if compaction else 0
        ),
        compact_entries=compaction.compact_words if compaction else 0,
        compact_bytes=compaction.compact_bytes if compaction else 0,
    )
