"""The table constructor — static half of the Graham-Glanville system.

``construct_tables`` turns a machine-description grammar into the parse
tables that drive the instruction pattern matcher, applying the paper's
disambiguation rules (shift-preferred, maximal munch) and its safety
checks (chain-rule loop rejection, syntactic-block notification).
"""

from .actions import (
    Accept, Action, ConflictKind, ConflictRecord, Reduce, Shift,
)
from .blocking import (
    BlockReport, find_blocks, operand_starter_terminals, summarize_blocks,
)
from .cache import (
    CACHE_VERSION, CacheOutcome, TableCache, cache_enabled, cached_build,
    default_cache_dir, table_cache_key,
)
from .compiled import (
    CACHE_KIND, CODEGEN_VERSION, CompiledMatcher, compiled_matcher_for,
    load_or_build_compiled, matchgen_fingerprint, render_matcher_source,
    rule_frequencies,
)
from .encode import (
    CompactedTables, CompactionError, CompactionReport, PackedRuntime,
    PackedTables, SizeReport, compact_tables, measure_tables, pack_tables,
)
from .lr0 import Automaton, Item, Kernel, build_automaton
from .naive import build_automaton_naive
from .slr import (
    ParseTables, TableConstructionError, TableStats, construct_tables,
)

__all__ = [
    "Shift", "Reduce", "Accept", "Action", "ConflictKind", "ConflictRecord",
    "Automaton", "Item", "Kernel", "build_automaton", "build_automaton_naive",
    "ParseTables", "TableStats", "TableConstructionError", "construct_tables",
    "find_blocks", "BlockReport", "summarize_blocks",
    "operand_starter_terminals",
    "PackedRuntime", "PackedTables", "SizeReport", "pack_tables",
    "measure_tables",
    "CompactedTables", "CompactionError", "CompactionReport",
    "compact_tables",
    "CACHE_KIND", "CODEGEN_VERSION", "CompiledMatcher",
    "compiled_matcher_for", "load_or_build_compiled",
    "matchgen_fingerprint", "render_matcher_source", "rule_frequencies",
    "CACHE_VERSION", "CacheOutcome", "TableCache", "cache_enabled",
    "cached_build", "default_cache_dir", "table_cache_key",
]
