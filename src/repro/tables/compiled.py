"""Compiled matcher: specialized Python source generated from the tables.

The packed loop is already 3x over the dict tables, but it is still a
generic interpreter — every step pays for table indirection, tag
decoding and bounds bookkeeping that are *constants* for any one set of
tables.  This module takes the compaction pass's output
(:func:`repro.tables.encode.compact_tables`) and renders a specialized
shift/reduce loop as Python source: the compact action rows and goto
columns become module-level tuple literals (shared rows emitted once),
the reduce-pool metadata is inlined, and the loop classifies an action
word with one sign test and one parity test.  The source is ``compile``d
and ``exec``d once, then bound to the live error/semantic machinery
(``SyntacticBlock``/``SemanticBlock`` construction, tie-breaks, loop
guards) through :func:`CompiledMatcher.bind` — the generated code never
imports anything, so an ``exec`` of a cached entry cannot reach outside
its namespace.

Generated programs are cached in the content-addressed table cache
(:mod:`repro.tables.cache`) under a distinct envelope kind
(:data:`CACHE_KIND`), checksummed exactly like the v2 table pickles.
The key covers the packed-table content, :data:`CODEGEN_VERSION` and any
frequency histogram used for layout, so a codegen change or a different
corpus profile is a clean miss, never a stale hit.  A cached entry whose
payload passes the envelope checksum but fails *semantic* validation
(source no longer compiles, wrong symbol count, missing ``bind``) is
quarantined through :meth:`TableCache.reject` and rebuilt from the
tables.

Failures anywhere in this pipeline are memoized as ``False`` on the
packed tables and reported as ``None`` from :func:`compiled_matcher_for`
— callers (the :class:`~repro.matcher.engine.Matcher`, the recovery
ladder) fall back to the packed interpreter, which remains the
differential oracle for every generated program.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..obs.metrics import REGISTRY as METRICS
from ..obs.spans import span
from .cache import TableCache, cache_enabled
from .encode import CompactedTables, CompactionReport, PackedTables, compact_tables

#: Bump whenever the rendered source's shape or the bind() contract
#: changes; part of the fingerprint, so old cache entries become misses.
CODEGEN_VERSION = 2

#: Envelope kind for compiled-matcher entries in the shared table cache.
CACHE_KIND = "matchgen"

#: Counter-name prefix for per-production reduce counts in the obs
#: registry (``matcher.rule.<production index>``), drained by
#: :func:`rule_frequencies` to guide compaction layout.
RULE_METRIC_PREFIX = "matcher.rule."


# --------------------------------------------------------------------- key
def matchgen_fingerprint(
    packed: PackedTables,
    frequencies: Optional[Mapping[int, int]] = None,
) -> str:
    """Content hash naming one generated program.

    Covers everything the rendered source depends on: the codegen
    version, the full packed-table content (symbols, action rows,
    defaults, gotos, reduce pools, production metadata) and the
    frequency histogram (layout changes the emitted source even though
    it never changes behaviour).
    """
    hasher = hashlib.sha256()
    hasher.update(f"matchgen-v{CODEGEN_VERSION}".encode())
    hasher.update(repr(sorted(packed.symbol_ids.items())).encode())
    for row in packed.action_rows:
        hasher.update(repr(row).encode())
    hasher.update(repr(packed.default_reduce).encode())
    for row in packed.goto_rows:
        hasher.update(repr(row).encode())
    hasher.update(repr(packed.reduce_pool).encode())
    hasher.update(repr(packed.prod_lhs_id).encode())
    hasher.update(repr(packed.prod_rhs_len).encode())
    if frequencies:
        hasher.update(repr(sorted(frequencies.items())).encode())
    return hasher.hexdigest()


def rule_frequencies(snapshot: Optional[Any] = None) -> Dict[int, int]:
    """Production-index -> reduce-count histogram from the obs registry.

    The matcher records ``matcher.rule.<index>`` counters when
    ``REPRO_OBS_RULES`` is set (e.g. while replaying the fuzz corpus);
    this drains them into the mapping :func:`compact_tables` takes for
    corpus-guided layout.  Pass a :class:`MetricsSnapshot` to read a
    saved profile instead of the live registry.
    """
    counters = (
        snapshot.counters if snapshot is not None
        else METRICS.snapshot().counters
    )
    frequencies: Dict[int, int] = {}
    for name, value in counters.items():
        if name.startswith(RULE_METRIC_PREFIX):
            try:
                frequencies[int(name[len(RULE_METRIC_PREFIX):])] = value
            except ValueError:
                continue
    return frequencies


# ---------------------------------------------------------------- renderer
def _vector_literal(name: str, vector: Tuple[int, ...]) -> str:
    """One row/column as source: sparse ``_row`` form when most entries
    share one value (they do — defaults were folded in), dense ``repr``
    when sparsity would not pay."""
    counts: Dict[int, int] = {}
    for word in vector:
        counts[word] = counts.get(word, 0) + 1
    default = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
    entries = tuple(
        (index, word) for index, word in enumerate(vector) if word != default
    )
    if 2 * len(entries) >= len(vector):
        return f"{name} = {vector!r}"
    return f"{name} = _row({len(vector)}, {default}, {entries!r})"


def render_matcher_source(compact: CompactedTables, key: str = "") -> str:
    """Render *compact* as the source of a specialized matcher module.

    The module is self-contained (no imports): constants, shared row and
    goto-column literals, pool metadata, the tie/goto side tables the
    host needs for slow paths, and ``bind(productions, block, choose,
    loop)`` returning the ``(match_null, match_sem)`` loop pair.
    """
    nslots = compact.nsymbols + 1
    nstates = compact.nstates
    nred_factor = 2 * (len(compact.goto_col_of_lhs) + 4)
    lines = [
        '"""Specialized shift/reduce matcher generated from packed SLR',
        "tables.",
        "",
        f"Generated by repro.tables.compiled (codegen v{CODEGEN_VERSION})"
        f" for table",
        f"fingerprint {key or '<unkeyed>'}.",
        "Do not edit: regenerated on any table or codegen change and",
        "cached content-addressed alongside the packed table pickles.",
        '"""',
        "",
        f"CODEGEN_VERSION = {CODEGEN_VERSION}",
        f"NSYMBOLS = {compact.nsymbols}",
        f"NSTATES = {nstates}",
        f"START = {compact.start_state}",
        f"NRED_FACTOR = {nred_factor}",
        "",
        "",
        "def _row(n, default, entries):",
        "    row = [default] * n",
        "    for index, word in entries:",
        "        row[index] = word",
        "    return tuple(row)",
        "",
    ]
    emit = lines.append

    # Unique action rows, each a tuple of nsymbols+1 compact words with
    # the default folded into every unmentioned slot *and* slot -1.
    for index, row in enumerate(compact.rows):
        emit(_vector_literal(f"_R{index}", row))
    emit("")
    emit("_UROWS = (%s)" % ", ".join(
        f"_R{index}" for index in range(len(compact.rows))
    ))
    emit("")

    # Unique goto columns, indexed by state.
    for index, column in enumerate(compact.goto_cols):
        emit(_vector_literal(f"_G{index}", column))
    emit("")
    emit("_GCOLS = (%s)" % ", ".join(
        f"_G{index}" for index in range(len(compact.goto_cols))
    ))
    emit("")
    emit(f"_NOGOTO = (-1,) * {nstates}")
    emit("")
    emit(f"_ROW_OF_STATE = {compact.row_of_state!r}")
    emit("")
    emit("ROWS = tuple(_UROWS[i] for i in _ROW_OF_STATE)")
    emit("")
    emit(f"_PGOTO_IDX = {compact.pool_goto!r}")
    emit("")
    emit(
        "PGOTO = tuple(_GCOLS[i] if i >= 0 else _NOGOTO"
        " for i in _PGOTO_IDX)"
    )
    emit("")
    emit(f"PLEN = {compact.pool_len!r}")
    emit("")
    emit(f"PPROD = {compact.pool_prod!r}")
    emit("")
    # Slow-path side tables: ambiguous pools and the goto column of each
    # LHS id, for the host's tie-break helper.
    tied = {
        pool: members
        for pool, members in enumerate(compact.pool_tied)
        if len(members) != 1
    }
    emit(f"PTIED = {tied!r}")
    emit("")
    emit(f"GOTO_OF_LHS = {compact.goto_col_of_lhs!r}")
    emit(_BIND_SOURCE)
    emit("")
    return "\n".join(lines)


# The loop pair, verbatim in every generated module.  ``bind`` closes the
# loops over live helpers the host supplies: ``productions`` (grammar
# order), ``block(state, stream, position, states)`` and
# ``loop(state, nred)`` building the raising MatchError subclasses, and
# ``choose(pool, states, descriptors)`` resolving reduce/reduce ties to
# a ``(production, goto_target)`` pair.  ``match_sem`` mirrors the
# packed interpreter action-for-action (goto resolved before on_reduce;
# the generic path pops before the goto lookup; a failed unit goto
# blocks with the unpopped stack) so the two engines stay differential
# twins even on error paths.
#
# Unit reductions get one extra specialization the interpreters cannot
# afford: a run of chain reductions never moves the lookahead and never
# changes the stack shape (the top is replaced in place), so the whole
# run — every intermediate state and the production sequence — is a
# pure function of ``(state, exposed, lookahead)``.  ``_chain`` walks a
# run once and the loops replay it from the ``chains`` memo as a single
# dict hit plus one ``extend``; a run that stops early because its next
# unit goto is missing is memoized up to the block, so the blocking
# step itself is re-handled (and raised) exactly where the packed loop
# would raise it.
_BIND_SOURCE = '''

def bind(productions, block, choose, loop):
    """(match_null, match_sem) closed over the host's helpers."""
    chains = {}

    def _chain(state, exposed, sym):
        # The maximal run of non-blocking unit reductions from *state*
        # under lookahead *sym* above *exposed*.  Bounded by NSTATES:
        # a longer run must revisit a state, and the nred guard in the
        # caller ends any such cycle after a bounded number of replays.
        prods = []
        while len(prods) < NSTATES:
            w = ROWS[state][sym]
            if w < 0 or not w & 1:
                break
            p = w >> 1
            if PLEN[p] != 1:
                break
            g = PGOTO[p][exposed]
            if g < 0:
                break
            state = g
            prods.append(productions[PPROD[p]])
        return state, tuple(prods)

    def match_null(ids, stream):
        rows = ROWS
        plen = PLEN
        pgoto = PGOTO
        prods = productions
        pprod = PPROD
        cget = chains.get
        states = [START]
        reductions = []
        sappend = states.append
        rappend = reductions.append
        rextend = reductions.extend
        state = START
        position = 0
        nred = 0
        sym = ids[0]
        limit = (len(ids) + 2) * NRED_FACTOR
        while 1:
            w = rows[state][sym]
            if w >= 0:
                if w & 1:
                    nred += 1
                    if nred > limit:
                        raise loop(state, nred)
                    p = w >> 1
                    count = plen[p]
                    if count == 1:
                        exposed = states[-2]
                        key = (state, exposed, sym)
                        hit = cget(key)
                        if hit is None:
                            hit = chains[key] = _chain(state, exposed, sym)
                        chained = hit[1]
                        if not chained:
                            raise block(exposed, stream, position, states)
                        nred += len(chained) - 1
                        if nred > limit:
                            raise loop(state, nred)
                        states[-1] = state = hit[0]
                        rextend(chained)
                    elif count:
                        del states[-count:]
                        g = pgoto[p][states[-1]]
                        if g < 0:
                            raise block(states[-1], stream, position, states)
                        state = g
                        sappend(g)
                        rappend(prods[pprod[p]])
                    else:
                        production, g = choose(p, states, None)
                        del states[-len(production.rhs):]
                        state = g
                        sappend(g)
                        rappend(production)
                else:
                    state = w >> 1
                    sappend(state)
                    position += 1
                    sym = ids[position]
            elif w == -2:
                return reductions
            else:
                raise block(state, stream, position, states)

    def match_sem(ids, stream, descriptors, on_shift, on_reduce):
        rows = ROWS
        plen = PLEN
        pgoto = PGOTO
        prods = productions
        pprod = PPROD
        cget = chains.get
        states = [START]
        reductions = []
        sappend = states.append
        rappend = reductions.append
        dappend = descriptors.append
        state = START
        position = 0
        nred = 0
        sym = ids[0]
        limit = (len(ids) + 2) * NRED_FACTOR
        while 1:
            w = rows[state][sym]
            if w >= 0:
                if w & 1:
                    nred += 1
                    if nred > limit:
                        raise loop(state, nred)
                    p = w >> 1
                    count = plen[p]
                    if count == 1:
                        exposed = states[-2]
                        key = (state, exposed, sym)
                        hit = cget(key)
                        if hit is None:
                            hit = chains[key] = _chain(state, exposed, sym)
                        chained = hit[1]
                        if not chained:
                            raise block(exposed, stream, position, states)
                        nred += len(chained) - 1
                        if nred > limit:
                            raise loop(state, nred)
                        for production in chained:
                            outcome = on_reduce(production, descriptors[-1:])
                            descriptors[-1] = (
                                outcome[0] if isinstance(outcome, tuple)
                                else outcome
                            )
                            rappend(production)
                        states[-1] = state = hit[0]
                    elif count:
                        production = prods[pprod[p]]
                        kids = descriptors[-count:]
                        del states[-count:], descriptors[-count:]
                        g = pgoto[p][states[-1]]
                        if g < 0:
                            raise block(states[-1], stream, position, states)
                        outcome = on_reduce(production, kids)
                        state = g
                        sappend(g)
                        dappend(
                            outcome[0] if isinstance(outcome, tuple)
                            else outcome
                        )
                        rappend(production)
                    else:
                        production, g = choose(p, states, descriptors)
                        count = len(production.rhs)
                        kids = descriptors[-count:]
                        del states[-count:], descriptors[-count:]
                        outcome = on_reduce(production, kids)
                        state = g
                        sappend(g)
                        dappend(
                            outcome[0] if isinstance(outcome, tuple)
                            else outcome
                        )
                        rappend(production)
                else:
                    dappend(on_shift(stream[position]))
                    state = w >> 1
                    sappend(state)
                    position += 1
                    sym = ids[position]
            elif w == -2:
                return reductions
            else:
                raise block(state, stream, position, states)

    return match_null, match_sem
'''


# ----------------------------------------------------------------- program
@dataclass
class CompiledMatcher:
    """One generated, executed matcher program.

    ``namespace`` is the module dict the source was ``exec``d into; the
    host reads the loop pair through :meth:`bind` and the slow-path side
    tables through the properties below.
    """

    key: str
    source: str
    report: Optional[CompactionReport] = None
    from_cache: bool = False
    namespace: Dict[str, Any] = field(
        default_factory=dict, repr=False, compare=False
    )

    def bind(self, productions, block, choose, loop):
        """``(match_null, match_sem)`` closed over the host helpers."""
        return self.namespace["bind"](productions, block, choose, loop)

    @property
    def pool_tied(self) -> Dict[int, Tuple[int, ...]]:
        """Ambiguous pools only: pool index -> tied production indices."""
        return self.namespace["PTIED"]

    @property
    def nsymbols(self) -> int:
        return self.namespace["NSYMBOLS"]

    def goto_target(self, lhs_id: int, state: int) -> int:
        """Goto for (state, LHS id), -1 when absent — the tie-break
        viability test, off the hot path."""
        column = self.namespace["GOTO_OF_LHS"].get(lhs_id)
        if column is None:
            return -1
        return self.namespace["_GCOLS"][column][state]


def _module_filename(key: str) -> str:
    return f"<matchgen:{key[:12]}>"


def _execute(code: Any, key: str) -> Dict[str, Any]:
    namespace: Dict[str, Any] = {"__name__": f"repro_matchgen_{key[:12]}"}
    exec(code, namespace)
    return namespace


def _validate_namespace(namespace: Dict[str, Any], packed: PackedTables) -> str:
    """Semantic validation of an executed program; '' when sound."""
    if namespace.get("CODEGEN_VERSION") != CODEGEN_VERSION:
        return "generated module reports a different codegen version"
    if namespace.get("NSYMBOLS") != len(packed.symbol_ids):
        return "generated module was built for different tables"
    if not callable(namespace.get("bind")):
        return "generated module has no bind() entry point"
    return ""


def _revive(
    payload: Any,
    key: str,
    packed: PackedTables,
    store: TableCache,
) -> Optional[CompiledMatcher]:
    """Rebuild a program from a cached payload, or quarantine and miss.

    The envelope checksum already passed (``TableCache.load`` verified
    it); everything here is semantic validation, so any failure goes
    through :meth:`TableCache.reject` — same post-mortem treatment as a
    flipped byte, because a payload that checksums clean but will not
    execute is *also* an entry that must never be re-trusted.
    """
    def reject(reason: str) -> None:
        store.reject(key, reason, kind=CACHE_KIND)
        METRICS.inc("matchgen.quarantines")

    if not isinstance(payload, dict):
        reject("matchgen payload is not a dict")
        return None
    if payload.get("codegen_version") != CODEGEN_VERSION:
        reject("matchgen payload codegen-version mismatch")
        return None
    if payload.get("fingerprint") != key:
        reject("matchgen payload fingerprint mismatch")
        return None
    source = payload.get("source")
    if not isinstance(source, str):
        reject("matchgen payload has no source")
        return None

    # Prefer the marshalled code object (skips re-parsing ~100KB of
    # generated source) when it was produced by this very interpreter;
    # fall back to compiling the source otherwise.
    code = None
    magic = payload.get("magic")
    blob = payload.get("code")
    if magic == importlib.util.MAGIC_NUMBER.hex() and isinstance(blob, bytes):
        try:
            code = marshal.loads(blob)
        except Exception:
            code = None
    if code is None:
        try:
            code = compile(source, _module_filename(key), "exec")
        except SyntaxError:
            reject("cached matchgen source does not compile")
            return None
    try:
        namespace = _execute(code, key)
    except Exception as exc:
        reject(f"cached matchgen source failed to exec: {type(exc).__name__}")
        return None
    problem = _validate_namespace(namespace, packed)
    if problem:
        reject(problem)
        return None
    report = payload.get("report")
    if not isinstance(report, CompactionReport):
        report = None
    return CompiledMatcher(
        key=key,
        source=source,
        report=report,
        from_cache=True,
        namespace=namespace,
    )


def load_or_build_compiled(
    packed: PackedTables,
    frequencies: Optional[Mapping[int, int]] = None,
    start_state: int = 0,
    directory: Optional[str] = None,
    enabled: Optional[bool] = None,
) -> CompiledMatcher:
    """The compiled program for *packed*: cache-load or compact+render.

    Raises :class:`~repro.tables.encode.CompactionError` (and anything
    else that goes structurally wrong) — :func:`compiled_matcher_for` is
    the never-raises wrapper.
    """
    if enabled is None:
        enabled = cache_enabled()
    key = matchgen_fingerprint(packed, frequencies)
    store = TableCache(directory)

    if enabled:
        payload = store.load(key, kind=CACHE_KIND)
        if payload is not None:
            program = _revive(payload, key, packed, store)
            if program is not None:
                METRICS.inc("matchgen.cache_hits")
                return program

    with span("matchgen.render", cat="static"):
        compact = compact_tables(packed, frequencies, start_state=start_state)
        source = render_matcher_source(compact, key)
    with span("matchgen.compile", cat="static"):
        code = compile(source, _module_filename(key), "exec")
        namespace = _execute(code, key)
    problem = _validate_namespace(namespace, packed)
    if problem:  # a renderer bug, not cache damage: fail the build
        raise RuntimeError(f"generated matcher failed validation: {problem}")
    METRICS.inc("matchgen.builds")

    if enabled:
        store.store(key, {
            "codegen_version": CODEGEN_VERSION,
            "fingerprint": key,
            "source": source,
            "report": compact.report,
            "magic": importlib.util.MAGIC_NUMBER.hex(),
            "code": marshal.dumps(code),
        }, kind=CACHE_KIND)
    return CompiledMatcher(
        key=key,
        source=source,
        report=compact.report,
        from_cache=False,
        namespace=namespace,
    )


def compiled_matcher_for(
    tables: Any,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    frequencies: Optional[Mapping[int, int]] = None,
) -> Optional[CompiledMatcher]:
    """The memoized compiled program for *tables*, or None.

    Never raises: a compaction or codegen failure is memoized as
    ``False`` on the packed tables (so the matcher asks exactly once)
    and reported as ``None``, which callers read as "stay on packed".
    """
    packed = tables.packed()
    memo = packed._compiled
    if memo is False:
        return None
    if isinstance(memo, CompiledMatcher) and (
        frequencies is None
        or memo.key == matchgen_fingerprint(packed, frequencies)
    ):
        return memo
    try:
        program = load_or_build_compiled(
            packed,
            frequencies=frequencies,
            start_state=tables.start_state,
            directory=cache_dir,
            enabled=cache,
        )
    except Exception:
        METRICS.inc("matchgen.failures")
        packed._compiled = False
        return None
    packed._compiled = program
    return program
