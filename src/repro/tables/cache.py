"""Persistent, content-addressed cache for constructed parse tables.

The paper's static phase is expensive by design — "it required over two
memory-intensive hours of VAX 11/780 CPU time to construct a new set of
tables" (section 7) — and our reproduction still pays LR(0) construction
over the full replicated VAX description in *every process*.  This module
removes that per-process cost: a cache key is the SHA-256 of the exact
machine-description text plus the construction options, so any change to
the productions or to the disambiguation toggles (``reversed_ops``,
``overfactoring_fix``) misses the cache and triggers a fresh build, while
an unchanged description warm-starts from a pickle in milliseconds.

Robustness rules:

* Entries are versioned (:data:`CACHE_VERSION`); a version or key
  mismatch is a miss, never an error.
* Every entry carries a SHA-256 of its pickled payload; a flipped byte
  anywhere in the payload is detected *before* unpickling, so corruption
  can never deserialize into silently wrong tables.
* A corrupt or truncated entry (bad checksum, unpicklable, wrong
  envelope) is **quarantined** — renamed to ``*.quarantined`` for post
  mortem — and the build falls back cold; the cache can always be
  thrown away.
* Writes are atomic (temp file + ``os.replace``), so a crashed process
  never leaves a half-written entry for the next one to trip over, and
  are retried with a short backoff when racing writers or transient I/O
  errors get in the way.

The cache directory defaults to ``$REPRO_TABLE_CACHE_DIR``, then
``$XDG_CACHE_HOME/repro-gg/tables``, then ``~/.cache/repro-gg/tables``;
``REPRO_TABLE_CACHE=0`` disables the whole mechanism.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..obs.metrics import REGISTRY as METRICS
from ..obs.spans import span

#: Bump when the pickled payload layout (or anything it closes over)
#: changes shape incompatibly; old entries become plain misses.
#: v2: the envelope carries a SHA-256 of the pickled payload.
#: v3: callers key construction by target name (two machine
#: descriptions must never alias), and the payload bundle carries
#: target-parametric semantics hooks.
CACHE_VERSION = 3

#: Atomic-store attempts before giving up (racing writers, NFS hiccups).
STORE_ATTEMPTS = 3

#: Base backoff between store attempts, seconds (doubles per retry).
STORE_BACKOFF = 0.05

ENV_DISABLE = "REPRO_TABLE_CACHE"
ENV_DIR = "REPRO_TABLE_CACHE_DIR"

_FALSEY = {"0", "off", "false", "no"}


def cache_enabled(default: bool = True) -> bool:
    """Whether the env permits caching (``REPRO_TABLE_CACHE=0`` wins)."""
    value = os.environ.get(ENV_DISABLE)
    if value is None:
        return default
    return value.strip().lower() not in _FALSEY


def default_cache_dir() -> str:
    override = os.environ.get(ENV_DIR)
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-gg", "tables")


def table_cache_key(grammar_text: str, **options: Any) -> str:
    """Content hash of a machine description plus construction options.

    The text itself carries most of the identity (toggles change the
    productions), but the options are hashed explicitly too so that any
    future option affecting construction *without* changing the text
    still splits the key space.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_VERSION}".encode())
    hasher.update(grammar_text.encode())
    for name in sorted(options):
        hasher.update(f"|{name}={options[name]!r}".encode())
    return hasher.hexdigest()


@dataclass
class CacheOutcome:
    """What one cache consultation did, for benchmarks and diagnostics."""

    key: str
    hit: bool = False
    path: str = ""
    load_seconds: float = 0.0
    build_seconds: float = 0.0
    store_seconds: float = 0.0
    error: str = ""
    #: why the existing entry was rejected ("" when it wasn't)
    corruption: str = ""
    #: where the rejected entry was moved for post mortem
    quarantined: str = ""
    #: atomic-store attempts beyond the first
    store_retries: int = 0

    @property
    def seconds(self) -> float:
        """Total static-phase time this consultation accounts for."""
        return self.load_seconds + self.build_seconds + self.store_seconds

    def as_dict(self) -> dict:
        return {
            "hit": self.hit,
            "load_seconds": self.load_seconds,
            "build_seconds": self.build_seconds,
            "store_seconds": self.store_seconds,
            "corruption": self.corruption,
            "quarantined": self.quarantined,
            "store_retries": self.store_retries,
            "error": self.error,
        }


class TableCache:
    """A directory of pickled ``(version, key, sha256, payload)``
    envelopes, where ``payload`` is itself pickled bytes covered by the
    checksum."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = str(directory) if directory else default_cache_dir()
        #: Set by :meth:`load` when it rejected an entry: a short reason.
        self.last_corruption: str = ""
        #: Where the rejected entry went ("" when deleted or none).
        self.last_quarantine: str = ""
        #: Set by :meth:`store`: retries beyond the first attempt.
        self.last_store_retries: int = 0

    def path_for(self, key: str, kind: str = "tables") -> str:
        """Entry path; *kind* namespaces envelope flavours sharing one
        directory (``tables`` pickles, ``matchgen`` compiled-matcher
        sources) without any change to the envelope format itself."""
        return os.path.join(self.directory, f"{key}.{kind}.pickle")

    # ------------------------------------------------------------- load
    def load(self, key: str, kind: str = "tables") -> Optional[Any]:
        """The cached payload, or None on miss/corruption.

        Corrupt entries (truncated file, flipped byte, checksum mismatch,
        foreign key) are quarantined — renamed aside, never re-trusted —
        and the miss triggers a cold rebuild.  Entries from an older
        :data:`CACHE_VERSION` are simply stale, and deleted quietly.
        """
        self.last_corruption = ""
        self.last_quarantine = ""
        path = self.path_for(key, kind)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception as exc:
            self._reject(path, f"unpicklable envelope: {type(exc).__name__}")
            return None
        if not isinstance(envelope, tuple) or len(envelope) != 4:
            self._reject(path, "malformed envelope")
            return None
        version, stored_key, digest, payload_bytes = envelope
        if version != CACHE_VERSION:
            # old layout, not damage: a quiet miss
            self._discard(path)
            return None
        if stored_key != key:
            self._reject(path, "envelope key mismatch")
            return None
        if not isinstance(payload_bytes, bytes) or (
            hashlib.sha256(payload_bytes).hexdigest() != digest
        ):
            self._reject(path, "payload checksum mismatch")
            return None
        try:
            return pickle.loads(payload_bytes)
        except Exception as exc:
            self._reject(path, f"unpicklable payload: {type(exc).__name__}")
            return None

    # ------------------------------------------------------------ store
    def store(self, key: str, payload: Any, kind: str = "tables") -> Optional[str]:
        """Atomically write *payload* (checksummed envelope); returns the
        path, or None when the filesystem refuses after bounded retries
        (a read-only cache is not an error)."""
        self.last_store_retries = 0
        path = self.path_for(key, kind)
        payload_bytes = pickle.dumps(
            payload, protocol=pickle.HIGHEST_PROTOCOL
        )
        envelope = (
            CACHE_VERSION, key,
            hashlib.sha256(payload_bytes).hexdigest(), payload_bytes,
        )
        for attempt in range(STORE_ATTEMPTS):
            try:
                os.makedirs(self.directory, exist_ok=True)
                fd, temp_path = tempfile.mkstemp(
                    dir=self.directory, suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        pickle.dump(
                            envelope, handle,
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                    os.replace(temp_path, path)
                except BaseException:
                    self._discard(temp_path)
                    raise
                return path
            except OSError:
                if attempt + 1 < STORE_ATTEMPTS:
                    self.last_store_retries = attempt + 1
                    time.sleep(STORE_BACKOFF * (2 ** attempt))
        self.last_store_retries = STORE_ATTEMPTS - 1
        return None

    # -------------------------------------------------------- rejection
    def reject(self, key: str, reason: str, kind: str = "tables") -> None:
        """Quarantine *key*'s entry explicitly.

        The v2 quarantine path normally fires inside :meth:`load` when an
        envelope is damaged; callers whose payload passes the envelope
        checks but fails *semantic* validation (a compiled source that no
        longer ``exec``s, say) use this to give the entry the same
        ``*.quarantined`` post-mortem treatment instead of re-trusting
        it on the next load.
        """
        self._reject(self.path_for(key, kind), reason)
        if METRICS.enabled:
            METRICS.inc("cache.quarantines")

    def _reject(self, path: str, reason: str) -> None:
        """Quarantine a damaged entry and remember why."""
        self.last_corruption = reason
        quarantine = path + ".quarantined"
        try:
            os.replace(path, quarantine)
            self.last_quarantine = quarantine
        except OSError:
            self._discard(path)

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass


def cached_build(
    key: str,
    builder: Callable[[], Any],
    directory: Optional[str] = None,
    enabled: Optional[bool] = None,
) -> Tuple[Any, CacheOutcome]:
    """Load the payload for *key*, or build and store it.

    ``builder`` runs on a miss (or with caching disabled); its result is
    what gets stored.  The returned :class:`CacheOutcome` records which
    happened and how long each step took, so benchmarks can report
    cold-vs-warm static-phase cost.
    """
    if enabled is None:
        enabled = cache_enabled()
    outcome = CacheOutcome(key=key)
    cache = TableCache(directory)

    # Every step below runs under try/finally: the outcome's timing
    # fields are populated on *every* exit path — hit, miss, corrupt
    # entry quarantined mid-load, builder failure, store retry or store
    # refusal — and the metrics are published even when an exception
    # propagates, so a crash still leaves an accounted-for trace.
    if enabled:
        started = time.perf_counter()
        try:
            with span("cache.load", cat="static"):
                payload = cache.load(key)
        finally:
            outcome.load_seconds = time.perf_counter() - started
            outcome.corruption = cache.last_corruption
            outcome.quarantined = cache.last_quarantine
        if payload is not None:
            outcome.hit = True
            outcome.path = cache.path_for(key)
            _publish(outcome, consulted=True)
            return payload, outcome

    started = time.perf_counter()
    built = False
    try:
        with span("tables.build", cat="static"):
            payload = builder()
        built = True
    finally:
        outcome.build_seconds = time.perf_counter() - started
        if not built:  # builder raised: publish what we measured
            _publish(outcome, consulted=enabled)

    if enabled:
        started = time.perf_counter()
        stored = None
        try:
            with span("cache.store", cat="static"):
                stored = cache.store(key, payload)
        except Exception as exc:
            # an unpicklable payload (or any other store-time surprise)
            # must not discard tables that were just built successfully
            outcome.error = f"store failed ({type(exc).__name__}: {exc})"
        finally:
            outcome.store_seconds = time.perf_counter() - started
            outcome.store_retries = cache.last_store_retries
        if stored:
            outcome.path = stored
        elif not outcome.error:
            outcome.error = "store failed (cache directory not writable)"
    _publish(outcome, consulted=enabled)
    return payload, outcome


def cached_load(
    key: str,
    directory: Optional[str] = None,
    enabled: Optional[bool] = None,
) -> Tuple[Optional[Any], CacheOutcome]:
    """Load-only consultation: the payload for *key*, or None — never
    builds.

    This is the pool-worker warm start: the parent computed *key* once
    (it owns the generator whose tables were cached under it) and ships
    only the hex digest to each worker, whose initializer loads the
    constructed tables straight from the content-addressed entry without
    regenerating the grammar text or re-deriving the key.  A miss or a
    quarantined entry returns ``(None, outcome)`` and the caller decides
    whether to build cold.
    """
    if enabled is None:
        enabled = cache_enabled()
    outcome = CacheOutcome(key=key)
    if not enabled:
        return None, outcome
    cache = TableCache(directory)
    started = time.perf_counter()
    try:
        with span("cache.load", cat="static"):
            payload = cache.load(key)
    finally:
        outcome.load_seconds = time.perf_counter() - started
        outcome.corruption = cache.last_corruption
        outcome.quarantined = cache.last_quarantine
    outcome.hit = payload is not None
    if outcome.hit:
        outcome.path = cache.path_for(key)
    _publish(outcome, consulted=True)
    return payload, outcome


def _publish(outcome: CacheOutcome, consulted: bool) -> None:
    """Surface one consultation's outcome as obs metrics."""
    if not METRICS.enabled:
        return
    if consulted:
        METRICS.inc("cache.hits" if outcome.hit else "cache.misses")
        if outcome.load_seconds:
            METRICS.observe("cache.load_seconds", outcome.load_seconds)
    if outcome.corruption:
        METRICS.inc("cache.quarantines")
    if outcome.build_seconds:
        METRICS.observe("cache.build_seconds", outcome.build_seconds)
    if outcome.store_seconds:
        METRICS.observe("cache.store_seconds", outcome.store_seconds)
    if outcome.store_retries:
        METRICS.inc("cache.store_retries", outcome.store_retries)
    if outcome.error:
        METRICS.inc("cache.store_failures")
