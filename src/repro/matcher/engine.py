"""The table-driven instruction pattern matcher (section 3.3).

"The instruction pattern matcher is a table-driven shift/reduce parser,
invoked once for each expression to be compiled."  The engine below is
target-independent: everything semantic — descriptor condensation,
instruction emission, choosing among tied reductions — is delegated to a
:class:`SemanticActions` object, mirroring the paper's decision to code
semantics as hand-written target-specific routines keyed by production.

Three drive loops share the same semantics contract.  The *packed* loop
— the default — interns the token stream once and then runs shift/reduce
entirely on the integer arrays of :class:`repro.tables.encode.PackedTables`
(binary-searched rows, flat reduce pool, per-production length/LHS-id
tables), answering the paper's complaint that the matcher "spent too much
time ... unpacking the description tables".  The *compiled* loop goes one
step further: :mod:`repro.tables.compiled` renders the compacted tables
as specialized Python source whose generated loop pair this class binds
to its own block/tie-break/loop-guard machinery; when generation fails
(epsilon productions, cache trouble) the matcher falls back to packed
transparently.  The *dict* loop is the original string-keyed reference
implementation, kept behind ``engine="dict"`` (or ``use_packed=False``)
for differential testing and for full traces.  Engine selection also
honours the ``REPRO_MATCHER`` environment variable
(``compiled|packed|dict``) when neither argument pins a choice.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..grammar.production import Production
from ..grammar.symbols import END
from ..ir.linearize import Token, linearize
from ..ir.tree import Node
from ..obs.metrics import REGISTRY as METRICS
from ..tables.actions import Accept, Reduce, Shift
from ..tables.compiled import CompiledMatcher, compiled_matcher_for
from ..tables.encode import TAG_ACCEPT, TAG_REDUCE, TAG_SHIFT
from ..tables.slr import ParseTables
from .descriptors import Descriptor, void
from .trace import NullTracer, Tracer


def _end_token() -> Token:
    """A shared $end sentinel; its node payload is never inspected."""
    node = Node.__new__(Node)
    node.op, node.ty, node.kids = None, None, []  # type: ignore
    node.value, node.cond = None, None
    return Token(END, node)


_END_TOKEN = _end_token()

#: Shared do-nothing tracer: NullTracer keeps no state, so one instance
#: serves every untraced match and spares a construction per call.
_NULL_TRACER = NullTracer()

#: Entry cap for the per-matcher null-semantics match memo; past it the
#: memo stops admitting new streams (repeats already in it still hit).
_MATCH_MEMO_LIMIT = 8192

#: The selectable drive loops, fastest first.
ENGINES = ("compiled", "packed", "dict")

#: Environment override for the default engine (``compiled|packed|dict``).
ENV_ENGINE = "REPRO_MATCHER"

#: When truthy, the compiled loop records per-production reduce counts
#: as ``matcher.rule.<index>`` metrics — the corpus profile that
#: :func:`repro.tables.compiled.rule_frequencies` drains for
#: frequency-guided table layout.
ENV_RULE_OBS = "REPRO_OBS_RULES"

_FALSEY = {"", "0", "off", "false", "no"}

#: The engine used when nothing (argument, env) picks one.
DEFAULT_ENGINE = "packed"

#: Bad ``$REPRO_MATCHER`` values already warned about this process —
#: ``resolve_engine`` runs per matcher construction, and one misspelled
#: shell export must not repeat its warning thousands of times.
_WARNED_ENV_VALUES: set = set()


def _warn_unknown_env_engine(value: str) -> None:
    """One structured WARNING per distinct bad env value per process."""
    from ..diag import codes
    from ..diag.diagnostics import Diagnostic

    METRICS.inc("matcher.engine.env_ignored")
    if value in _WARNED_ENV_VALUES:
        return
    _WARNED_ENV_VALUES.add(value)
    diagnostic = Diagnostic(
        code=codes.ENGINE_UNKNOWN,
        message=(
            f"${ENV_ENGINE} names unknown matcher engine {value!r}; "
            f"falling back to {DEFAULT_ENGINE!r} "
            f"(expected one of {', '.join(ENGINES)})"
        ),
        context={"value": value, "fallback": DEFAULT_ENGINE},
    )
    import sys

    print(diagnostic.format(), file=sys.stderr)


def resolve_engine(
    engine: Optional[str] = None, use_packed: Optional[bool] = None
) -> str:
    """Pick a drive loop: explicit *engine* wins, then the legacy
    *use_packed* boolean, then ``$REPRO_MATCHER``, then ``"packed"``.

    An explicit but unknown *engine* raises.  An unknown environment
    value still resolves to the default (a misspelled env var must not
    break compiles) but is *reported*: a structured ENGINE-UNKNOWN
    warning naming the bad value and the fallback engine, once per
    distinct value per process — never silently swallowed.
    """
    if engine is not None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown matcher engine {engine!r}; expected one of {ENGINES}"
            )
        return engine
    if use_packed is not None:
        return "packed" if use_packed else "dict"
    value = os.environ.get(ENV_ENGINE, "").strip().lower()
    if value in ENGINES:
        return value
    if value:
        _warn_unknown_env_engine(value)
    return DEFAULT_ENGINE


def rule_observation_enabled() -> bool:
    """Whether ``$REPRO_OBS_RULES`` asks for per-rule reduce counts."""
    return os.environ.get(ENV_RULE_OBS, "").strip().lower() not in _FALSEY


class MatchError(Exception):
    """Base class for pattern-matching failures.

    Every concrete failure carries a ``context()`` dict of primitives —
    matcher state, stack snapshots, lookahead — so the resilience layer
    can turn it into a structured diagnostic without parsing message
    text.
    """

    def context(self) -> dict:
        return {}


class SyntacticBlock(MatchError):
    """The parser hit the error action on well-formed input: the machine
    description cannot cover this tree (section 6.2.2)."""

    def __init__(
        self,
        state: int,
        token: Token,
        state_dump: str,
        position: int = -1,
        state_stack: Tuple[int, ...] = (),
        symbol_stack: Tuple[str, ...] = (),
    ) -> None:
        super().__init__(
            f"syntactic block in state {state} on {token!r}\n{state_dump}"
        )
        self.state = state
        self.token = token
        self.position = position
        self.state_stack = state_stack
        self.symbol_stack = symbol_stack

    def context(self) -> dict:
        out = {
            "state": self.state,
            "lookahead": self.token.symbol,
            "position": self.position,
            "state_stack": list(self.state_stack[-12:]),
        }
        if self.symbol_stack:
            out["symbol_stack"] = list(self.symbol_stack[-12:])
        return out


class SemanticBlock(MatchError):
    """A reduction completed but nothing can consume it: either the
    chosen production's LHS has no goto from the exposed state, or a
    reduce/reduce tie has no viable candidate at all.  This is the
    paper's *semantic blocking* — the grammar covered the prefix but the
    semantic context cannot continue (section 6.2.2)."""

    def __init__(
        self,
        message: str,
        state: int = -1,
        lhs: str = "",
        state_stack: Tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.state = state
        self.lhs = lhs
        self.state_stack = state_stack

    def context(self) -> dict:
        return {
            "state": self.state,
            "lhs": self.lhs,
            "state_stack": list(self.state_stack[-12:]),
        }


class ReductionLoop(MatchError):
    """Chain reductions cycled — statically impossible if the table
    constructor's loop check ran, kept as a dynamic backstop."""

    def __init__(self, message: str, state: int = -1) -> None:
        super().__init__(message)
        self.state = state

    def context(self) -> dict:
        return {"state": self.state}


#: Shared result of the do-nothing hooks.  The default semantics never
#: mutate a descriptor, so one void serves every step; overriding hooks
#: that attach state must build their own (they all do).
_SHARED_VOID = void()


class SemanticActions:
    """Default do-nothing semantics: descriptors are opaque voids.

    Target back ends (``repro.vax.semantics``) override the three hooks.
    ``on_reduce`` may return either a descriptor or a ``(descriptor,
    note)`` pair; the note lands in the trace's "Semantic Action" column.
    """

    def on_shift(self, token: Token) -> Descriptor:
        return _SHARED_VOID

    def on_reduce(
        self, production: Production, kids: Sequence[Descriptor]
    ) -> Union[Descriptor, Tuple[Descriptor, str]]:
        return _SHARED_VOID

    def choose(
        self, productions: Sequence[Production], kids: Sequence[Descriptor]
    ) -> Production:
        """Resolve a reduce/reduce tie the tables left to run time.

        The default takes the first (lowest-numbered) production, which
        makes grammar order the priority — the paper's grammars rely on
        semantic attributes here; the VAX semantics override this.
        """
        return productions[0]


@dataclass
class MatchResult:
    """Outcome of matching one expression tree."""

    descriptor: Descriptor          # signature of the whole tree
    reductions: List[Production]    # in emission order
    tracer: Tracer

    @property
    def chain_reductions(self) -> int:
        return sum(1 for p in self.reductions if p.is_chain)


class Matcher:
    """A reusable pattern matcher bound to one set of parse tables.

    ``engine`` selects the drive loop (``"compiled"``, ``"packed"`` or
    ``"dict"``); the legacy ``use_packed`` boolean and the
    ``$REPRO_MATCHER`` environment variable are honoured through
    :func:`resolve_engine` when ``engine`` is not given.  The compiled
    engine falls back to packed whenever the generated program is
    unavailable.  A real (non-null) tracer always uses the dict path,
    which records the full symbol-stack renderings the appendix-style
    traces need.
    """

    def __init__(
        self,
        tables: ParseTables,
        semantics: Optional[SemanticActions] = None,
        use_packed: Optional[bool] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.tables = tables
        self.semantics = semantics or SemanticActions()
        self.engine = resolve_engine(engine, use_packed)
        self.use_packed = self.engine != "dict"
        #: (program, match_null, match_sem, null_ok, intern_get, end_id)
        #: for the bound compiled program, built on first compiled match.
        self._bound: Optional[tuple] = None
        #: Null-semantics match memo: interned id sequence -> reduction
        #: tuple.  With the default do-nothing semantics a match outcome
        #: is a pure function of the id sequence, and linearized
        #: statement trees repeat heavily across a program, so the
        #: compiled engine replays repeats as one dict hit.  Bounded;
        #: never consulted when semantics hooks are overridden.
        self._match_memo: dict = {}
        self._observe_rules = rule_observation_enabled()

    # ----------------------------------------------------------- driving
    def match_tree(self, tree: Node, tracer: Optional[Tracer] = None) -> MatchResult:
        """Linearize *tree* and parse it to acceptance."""
        return self.match_tokens(linearize(tree), tracer)

    def match_tokens(
        self, tokens: Sequence[Token], tracer: Optional[Tracer] = None
    ) -> MatchResult:
        if tracer is None:
            tracer = _NULL_TRACER
        if self.use_packed and isinstance(tracer, NullTracer):
            if self.engine == "compiled":
                bound = self._bound
                if bound is None:
                    program = compiled_matcher_for(self.tables)
                    if program is not None:
                        bound = self._bind_compiled(program)
                if bound is not None:
                    METRICS.inc("matcher.compiled_runs")
                    return self._match_compiled(bound, tokens, tracer)
                # generation failed (memoized); ride the packed loop
                METRICS.inc("matcher.compiled_fallbacks")
            METRICS.inc("matcher.packed_runs")
            return self._match_packed(tokens, tracer)
        METRICS.inc("matcher.dict_runs")
        return self._match_dict(tokens, tracer)

    # ---------------------------------------------------------- blocking
    def _block(
        self,
        state: int,
        stream: Sequence[Token],
        position: int,
        states: Sequence[int],
        symbols: Sequence[str] = (),
    ) -> "SyntacticBlock":
        """Build the one true :class:`SyntacticBlock` with full context.

        Both drive loops funnel every error action through here so the
        block diagnostic always carries the same fields: blocking state,
        lookahead token and its stream position, and the state (and,
        for the dict loop, symbol) stack snapshots the resilience layer
        reports.
        """
        METRICS.inc("matcher.block.syntactic")
        return SyntacticBlock(
            state,
            stream[position],
            self.tables.automaton.describe_state(state),
            position=position,
            state_stack=tuple(states),
            symbol_stack=tuple(symbols),
        )

    # ------------------------------------------------- packed (fast) loop
    def _match_packed(self, tokens: Sequence[Token], tracer: Tracer) -> MatchResult:
        """Shift/reduce on the packed integer tables.

        The stream is interned once up front; every subsequent lookup is a
        binary search over small sorted int rows (or the row's default
        reduce), so the hot loop does no string hashing and builds no
        trace strings.  Behaviour matches the dict loop action-for-action
        on acceptable input; on erroneous input a compressed row's default
        reduce may fire a few extra (harmless) reductions before the block
        is discovered — the standard LR row-compression trade.
        """
        tables = self.tables
        packed = tables.packed()
        runtime = packed.runtime()
        semantics = self.semantics
        productions = tables.grammar.productions

        nsymbols = runtime.nsymbols
        action_words = runtime.action_words
        default_words = runtime.default_words
        goto_words = runtime.goto_words
        pool_single = runtime.pool_single
        reduce_pool = packed.reduce_pool
        prod_lhs_id = packed.prod_lhs_id
        prod_rhs_len = packed.prod_rhs_len
        on_shift = semantics.on_shift
        on_reduce = semantics.on_reduce

        # Pre-intern the linearized stream once per tree: the loop below
        # never hashes a symbol string again.
        get = packed.symbol_ids.get
        stream = [token for token in tokens]
        ids = [get(token.symbol, -1) for token in stream]
        stream.append(_END_TOKEN)
        ids.append(get(END, -1))

        state = tables.start_state
        states: List[int] = [state]
        descriptors: List[Descriptor] = [void()]
        reductions: List[Production] = []

        position = 0
        reduces_since_shift = 0
        loop_limit = max(64, 4 * len(productions))

        while True:
            symbol_id = ids[position]
            if symbol_id >= 0:
                word = action_words[state * nsymbols + symbol_id]
            else:
                word = default_words[state]
            if word < 0:
                raise self._block(state, stream, position, states)

            tag = word & 3
            if tag == 0:  # TAG_SHIFT
                descriptors.append(on_shift(stream[position]))
                state = word >> 2
                states.append(state)
                position += 1
                reduces_since_shift = 0
                continue

            if tag == 2:  # TAG_ACCEPT
                return MatchResult(descriptors[-1], reductions, tracer)

            # TAG_REDUCE
            reduces_since_shift += 1
            if reduces_since_shift > loop_limit:
                METRICS.inc("matcher.block.loop")
                raise ReductionLoop(
                    f"{reduces_since_shift} consecutive reductions "
                    f"in state {state}",
                    state=state,
                )

            index = pool_single[word >> 2]
            if index >= 0:
                production = productions[index]
                count = prod_rhs_len[index]
            else:
                production = self._select_packed(
                    reduce_pool[word >> 2], states, descriptors, packed
                )
                index = production.index
                count = prod_rhs_len[index]

            if count == 1:
                # Chain/unit reductions dominate the profile (E8): replace
                # the stack top in place instead of slicing and deleting.
                kids = descriptors[-1:]
                exposed = states[-2]
                state = goto_words[exposed * nsymbols + prod_lhs_id[index]]
                if state < 0:
                    raise self._block(exposed, stream, position, states)
                outcome = on_reduce(production, kids)
                descriptors[-1] = (
                    outcome[0] if isinstance(outcome, tuple) else outcome
                )
                states[-1] = state
                reductions.append(production)
                continue

            kids = descriptors[-count:]
            del states[-count:], descriptors[-count:]

            state = goto_words[states[-1] * nsymbols + prod_lhs_id[index]]
            if state < 0:
                # Only reachable when a default reduce fired on an input
                # the tables cannot cover: report it as the block it is.
                raise self._block(states[-1], stream, position, states)

            outcome = on_reduce(production, kids)
            if isinstance(outcome, tuple):
                descriptor = outcome[0]
            else:
                descriptor = outcome

            states.append(state)
            descriptors.append(descriptor)
            reductions.append(production)

    def _select_packed(
        self,
        tied: Tuple[int, ...],
        states: List[int],
        descriptors: List[Descriptor],
        packed,
    ) -> Production:
        """The packed twin of :meth:`_select`: same viability filter and
        semantic tie-break, driven by dense goto lookups.  Tied rules have
        equal length (they are the surviving longest-rule winners), so the
        exposed state is the same for every candidate."""
        METRICS.inc("matcher.tie_breaks")
        grammar = self.tables.grammar
        runtime = packed.runtime()
        prod_lhs_id = packed.prod_lhs_id
        count = packed.prod_rhs_len[tied[0]]
        exposed = states[-count - 1]
        base = exposed * runtime.nsymbols
        goto_words = runtime.goto_words
        viable = [
            grammar[index] for index in tied
            if goto_words[base + prod_lhs_id[index]] >= 0
        ]
        if not viable:
            METRICS.inc("matcher.block.semantic")
            raise SemanticBlock(
                f"reduce/reduce tie {tied} has no viable goto "
                f"from state {exposed}",
                state=exposed,
                state_stack=tuple(states),
            )
        if len(viable) == 1:
            return viable[0]
        kids = descriptors[-count:]
        return self.semantics.choose(viable, kids)

    # --------------------------------------------- compiled (fastest) loop
    def _match_compiled(
        self, bound: tuple, tokens: Sequence[Token], tracer: Tracer
    ) -> MatchResult:
        """Drive the generated loop pair from :mod:`repro.tables.compiled`.

        The generated module owns the table literals and the shift/reduce
        loop; this method interns the stream, picks the null- or
        full-semantics variant, and wraps the reductions in the same
        :class:`MatchResult` the other loops produce.  Differential
        equivalence with :meth:`_match_packed` — including error paths —
        is the contract the generated source is rendered to keep.  The
        token sequence is passed through uncopied: the loops only read
        it, and the bound ``block`` helper materializes the ``$end``
        sentinel on the rare blocking path that needs it.
        """
        get = bound[4]
        ids = [get(token.symbol, -1) for token in tokens]
        ids.append(bound[5])
        if bound[3]:
            memo = self._match_memo
            key = tuple(ids)
            hit = memo.get(key)
            if hit is not None:
                METRICS.inc("matcher.memo_hits")
                reductions = list(hit)
            else:
                reductions = bound[1](ids, tokens)
                if len(memo) < _MATCH_MEMO_LIMIT:
                    memo[key] = tuple(reductions)
            result = MatchResult(_SHARED_VOID, reductions, tracer)
        else:
            descriptors: List[Descriptor] = [void()]
            semantics = self.semantics
            reductions = bound[2](
                ids, tokens, descriptors,
                semantics.on_shift, semantics.on_reduce,
            )
            result = MatchResult(descriptors[-1], reductions, tracer)
        if self._observe_rules:
            counts: dict = {}
            for production in reductions:
                index = production.index
                counts[index] = counts.get(index, 0) + 1
            for index, count in counts.items():
                METRICS.inc(f"matcher.rule.{index}", count)
        return result

    def _bind_compiled(self, program: CompiledMatcher) -> tuple:
        """Close the generated loops over this matcher's slow paths.

        The generated source delegates everything non-hot back here:
        ``block`` builds the one true :class:`SyntacticBlock` (appending
        the ``$end`` sentinel the compiled caller did not materialize),
        ``choose`` runs the packed tie-break contract (viability filter,
        then the semantic hook), and ``loop`` is the reduction-cycle
        backstop.  The binding is memoized per (matcher, program) pair.
        """
        packed = self.tables.packed()
        productions = self.tables.grammar.productions
        prod_rhs_len = packed.prod_rhs_len
        prod_lhs_id = packed.prod_lhs_id
        pool_tied = program.pool_tied
        semantics = self.semantics

        def block(state, stream, position, states):
            if position >= len(stream):
                stream = list(stream)
                stream.append(_END_TOKEN)
            return self._block(state, stream, position, states)

        def choose(pool, states, descriptors):
            METRICS.inc("matcher.tie_breaks")
            tied = pool_tied[pool]
            count = prod_rhs_len[tied[0]]
            exposed = states[-count - 1]
            viable = [
                (productions[index], target) for index in tied
                if (target := program.goto_target(
                    prod_lhs_id[index], exposed)) >= 0
            ]
            if not viable:
                METRICS.inc("matcher.block.semantic")
                raise SemanticBlock(
                    f"reduce/reduce tie {tied} has no viable goto "
                    f"from state {exposed}",
                    state=exposed,
                    state_stack=tuple(states),
                )
            if len(viable) == 1:
                return viable[0]
            kids = () if descriptors is None else descriptors[-count:]
            production = semantics.choose([p for p, _ in viable], kids)
            target = program.goto_target(
                prod_lhs_id[production.index], exposed
            )
            if target < 0:  # choose() went outside the viable set
                METRICS.inc("matcher.block.semantic")
                raise SemanticBlock(
                    f"no goto from state {exposed} on {production.lhs!r} "
                    f"after reducing {production}",
                    state=exposed,
                    lhs=production.lhs,
                    state_stack=tuple(states),
                )
            return production, target

        def loop(state, nred):
            METRICS.inc("matcher.block.loop")
            return ReductionLoop(
                f"{nred} reductions without acceptance in state {state}",
                state=state,
            )

        match_null, match_sem = program.bind(productions, block, choose, loop)
        base = SemanticActions
        kind = type(self.semantics)
        null_ok = (
            kind.on_shift is base.on_shift
            and kind.on_reduce is base.on_reduce
            and kind.choose is base.choose
        )
        get = packed.symbol_ids.get
        self._bound = (
            program, match_null, match_sem, null_ok, get, get(END, -1),
        )
        return self._bound

    # -------------------------------------------- dict (reference) loop
    def _match_dict(
        self, tokens: Sequence[Token], tracer: Tracer
    ) -> MatchResult:
        tables = self.tables
        semantics = self.semantics

        # Stack of (state, symbol, descriptor); bottom carries the start state.
        states: List[int] = [tables.start_state]
        symbols: List[str] = ["$"]
        descriptors: List[Descriptor] = [void()]
        reductions: List[Production] = []

        end_node = Node.__new__(Node)  # sentinel token payload, never inspected
        end_node.op, end_node.ty, end_node.kids = None, None, []  # type: ignore
        end_node.value, end_node.cond = None, None
        stream = list(tokens) + [Token(END, end_node)]

        position = 0
        reduces_since_shift = 0
        loop_limit = max(64, 4 * len(tables.grammar))

        while True:
            state = states[-1]
            token = stream[position]
            action = tables.action_for(state, token.symbol)

            if action is None:
                raise self._block(state, stream, position, states, symbols)

            if isinstance(action, Shift):
                descriptor = semantics.on_shift(token)
                states.append(action.state)
                symbols.append(token.symbol)
                descriptors.append(descriptor)
                position += 1
                reduces_since_shift = 0
                tracer.record(
                    "shift", repr(token), state=action.state,
                    stack=" ".join(symbols[1:]),
                )
                continue

            if isinstance(action, Accept):
                tracer.record("accept", symbols[-1] if len(symbols) > 1 else "")
                return MatchResult(descriptors[-1], reductions, tracer)

            assert isinstance(action, Reduce)
            reduces_since_shift += 1
            if reduces_since_shift > loop_limit:
                METRICS.inc("matcher.block.loop")
                raise ReductionLoop(
                    f"{reduces_since_shift} consecutive reductions "
                    f"in state {state}",
                    state=state,
                )

            production = self._select(action, states, descriptors)
            count = len(production.rhs)
            kids = descriptors[-count:]
            del states[-count:], symbols[-count:], descriptors[-count:]

            goto = tables.goto_for(states[-1], production.lhs)
            if goto is None:
                METRICS.inc("matcher.block.semantic")
                raise SemanticBlock(
                    f"no goto from state {states[-1]} on {production.lhs!r} "
                    f"after reducing {production}",
                    state=states[-1],
                    lhs=production.lhs,
                    state_stack=tuple(states),
                )

            outcome = semantics.on_reduce(production, kids)
            if isinstance(outcome, tuple):
                descriptor, note = outcome
            else:
                descriptor, note = outcome, ""

            states.append(goto)
            symbols.append(production.lhs)
            descriptors.append(descriptor)
            reductions.append(production)
            tracer.record(
                "reduce",
                f"{production.lhs} <- {' '.join(production.rhs)}",
                semantic=note,
                state=goto,
                stack=" ".join(symbols[1:]),
            )

    # --------------------------------------------------------- selection
    def _select(
        self, action: Reduce, states: List[int], descriptors: List[Descriptor]
    ) -> Production:
        """Pick the production for a (possibly tied) reduce action.

        Tied rules have equal length, so the popped stack slice is the
        same; candidates whose LHS has no goto from the exposed state are
        unviable and dropped first, then the semantic hook chooses.
        """
        grammar = self.tables.grammar
        if not action.is_ambiguous:
            return grammar[action.production]

        METRICS.inc("matcher.tie_breaks")
        candidates = [grammar[index] for index in action.productions]
        count = len(candidates[0].rhs)
        exposed = states[-count - 1]
        viable = [
            production for production in candidates
            if self.tables.goto_for(exposed, production.lhs) is not None
        ]
        if not viable:
            METRICS.inc("matcher.block.semantic")
            raise SemanticBlock(
                f"reduce/reduce tie {action.productions} has no viable goto "
                f"from state {exposed}",
                state=exposed,
                state_stack=tuple(states),
            )
        if len(viable) == 1:
            return viable[0]
        kids = descriptors[-count:]
        return self.semantics.choose(viable, kids)
