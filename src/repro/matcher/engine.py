"""The table-driven instruction pattern matcher (section 3.3).

"The instruction pattern matcher is a table-driven shift/reduce parser,
invoked once for each expression to be compiled."  The engine below is
target-independent: everything semantic — descriptor condensation,
instruction emission, choosing among tied reductions — is delegated to a
:class:`SemanticActions` object, mirroring the paper's decision to code
semantics as hand-written target-specific routines keyed by production.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..grammar.production import Production
from ..grammar.symbols import END
from ..ir.linearize import Token, linearize
from ..ir.tree import Node
from ..tables.actions import Accept, Reduce, Shift
from ..tables.slr import ParseTables
from .descriptors import Descriptor, void
from .trace import NullTracer, Tracer


class MatchError(Exception):
    """Base class for pattern-matching failures."""


class SyntacticBlock(MatchError):
    """The parser hit the error action on well-formed input: the machine
    description cannot cover this tree (section 6.2.2)."""

    def __init__(self, state: int, token: Token, state_dump: str) -> None:
        super().__init__(
            f"syntactic block in state {state} on {token!r}\n{state_dump}"
        )
        self.state = state
        self.token = token


class ReductionLoop(MatchError):
    """Chain reductions cycled — statically impossible if the table
    constructor's loop check ran, kept as a dynamic backstop."""


class SemanticActions:
    """Default do-nothing semantics: descriptors are opaque voids.

    Target back ends (``repro.vax.semantics``) override the three hooks.
    ``on_reduce`` may return either a descriptor or a ``(descriptor,
    note)`` pair; the note lands in the trace's "Semantic Action" column.
    """

    def on_shift(self, token: Token) -> Descriptor:
        return void()

    def on_reduce(
        self, production: Production, kids: Sequence[Descriptor]
    ) -> Union[Descriptor, Tuple[Descriptor, str]]:
        return void()

    def choose(
        self, productions: Sequence[Production], kids: Sequence[Descriptor]
    ) -> Production:
        """Resolve a reduce/reduce tie the tables left to run time.

        The default takes the first (lowest-numbered) production, which
        makes grammar order the priority — the paper's grammars rely on
        semantic attributes here; the VAX semantics override this.
        """
        return productions[0]


@dataclass
class MatchResult:
    """Outcome of matching one expression tree."""

    descriptor: Descriptor          # signature of the whole tree
    reductions: List[Production]    # in emission order
    tracer: Tracer

    @property
    def chain_reductions(self) -> int:
        return sum(1 for p in self.reductions if p.is_chain)


class Matcher:
    """A reusable pattern matcher bound to one set of parse tables."""

    def __init__(self, tables: ParseTables, semantics: Optional[SemanticActions] = None) -> None:
        self.tables = tables
        self.semantics = semantics or SemanticActions()

    # ----------------------------------------------------------- driving
    def match_tree(self, tree: Node, tracer: Optional[Tracer] = None) -> MatchResult:
        """Linearize *tree* and parse it to acceptance."""
        return self.match_tokens(linearize(tree), tracer)

    def match_tokens(
        self, tokens: Sequence[Token], tracer: Optional[Tracer] = None
    ) -> MatchResult:
        if tracer is None:
            tracer = NullTracer()
        tables = self.tables
        semantics = self.semantics

        # Stack of (state, symbol, descriptor); bottom carries the start state.
        states: List[int] = [tables.start_state]
        symbols: List[str] = ["$"]
        descriptors: List[Descriptor] = [void()]
        reductions: List[Production] = []

        end_node = Node.__new__(Node)  # sentinel token payload, never inspected
        end_node.op, end_node.ty, end_node.kids = None, None, []  # type: ignore
        end_node.value, end_node.cond = None, None
        stream = list(tokens) + [Token(END, end_node)]

        position = 0
        reduces_since_shift = 0
        loop_limit = max(64, 4 * len(tables.grammar))

        while True:
            state = states[-1]
            token = stream[position]
            action = tables.action_for(state, token.symbol)

            if action is None:
                raise SyntacticBlock(
                    state, token, tables.automaton.describe_state(state)
                )

            if isinstance(action, Shift):
                descriptor = semantics.on_shift(token)
                states.append(action.state)
                symbols.append(token.symbol)
                descriptors.append(descriptor)
                position += 1
                reduces_since_shift = 0
                tracer.record(
                    "shift", repr(token), state=action.state,
                    stack=" ".join(symbols[1:]),
                )
                continue

            if isinstance(action, Accept):
                tracer.record("accept", symbols[-1] if len(symbols) > 1 else "")
                return MatchResult(descriptors[-1], reductions, tracer)

            assert isinstance(action, Reduce)
            reduces_since_shift += 1
            if reduces_since_shift > loop_limit:
                raise ReductionLoop(
                    f"{reduces_since_shift} consecutive reductions in state {state}"
                )

            production = self._select(action, states, descriptors)
            count = len(production.rhs)
            kids = descriptors[-count:]
            del states[-count:], symbols[-count:], descriptors[-count:]

            goto = tables.goto_for(states[-1], production.lhs)
            if goto is None:
                raise MatchError(
                    f"no goto from state {states[-1]} on {production.lhs!r} "
                    f"after reducing {production}"
                )

            outcome = semantics.on_reduce(production, kids)
            if isinstance(outcome, tuple):
                descriptor, note = outcome
            else:
                descriptor, note = outcome, ""

            states.append(goto)
            symbols.append(production.lhs)
            descriptors.append(descriptor)
            reductions.append(production)
            tracer.record(
                "reduce",
                f"{production.lhs} <- {' '.join(production.rhs)}",
                semantic=note,
                state=goto,
                stack=" ".join(symbols[1:]),
            )

    # --------------------------------------------------------- selection
    def _select(
        self, action: Reduce, states: List[int], descriptors: List[Descriptor]
    ) -> Production:
        """Pick the production for a (possibly tied) reduce action.

        Tied rules have equal length, so the popped stack slice is the
        same; candidates whose LHS has no goto from the exposed state are
        unviable and dropped first, then the semantic hook chooses.
        """
        grammar = self.tables.grammar
        if not action.is_ambiguous:
            return grammar[action.production]

        candidates = [grammar[index] for index in action.productions]
        count = len(candidates[0].rhs)
        exposed = states[-count - 1]
        viable = [
            production for production in candidates
            if self.tables.goto_for(exposed, production.lhs) is not None
        ]
        if not viable:
            raise MatchError(
                f"reduce/reduce tie {action.productions} has no viable goto "
                f"from state {exposed}"
            )
        if len(viable) == 1:
            return viable[0]
        kids = descriptors[-count:]
        return self.semantics.choose(viable, kids)
