"""Appendix-style action traces.

The paper's appendix prints, for ``a := 27 + b``, "the following sequences
of shift, reduce, and accept actions" in three columns: the action, what
it acted on, and the semantic action taken.  :class:`Tracer` records
exactly that, and :func:`format_trace` renders the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class TraceEntry:
    """One matcher step."""

    action: str           # "shift" | "reduce" | "accept" | "error"
    subject: str          # the token or production acted on
    semantic: str = ""    # what the semantic routines did
    state: int = -1       # parser state after the step
    stack: str = ""       # rendered symbol stack after the step

    def row(self) -> List[str]:
        return [self.action, self.subject, self.semantic]


class Tracer:
    """Collects matcher steps; a no-op subclass silences tracing."""

    def __init__(self, keep_stacks: bool = False) -> None:
        self.entries: List[TraceEntry] = []
        self.keep_stacks = keep_stacks

    def record(
        self,
        action: str,
        subject: str,
        semantic: str = "",
        state: int = -1,
        stack: str = "",
    ) -> None:
        self.entries.append(
            TraceEntry(action, subject, semantic, state,
                       stack if self.keep_stacks else "")
        )

    # Counters used by the E8 experiment (parse-time / chain-rule share).
    def shifts(self) -> int:
        return sum(1 for e in self.entries if e.action == "shift")

    def reduces(self) -> int:
        return sum(1 for e in self.entries if e.action == "reduce")

    def __len__(self) -> int:
        return len(self.entries)


class NullTracer(Tracer):
    """Tracing disabled: record() is free."""

    def record(self, *args, **kwargs) -> None:  # noqa: D102
        pass


HEADERS = ("Action", "On What", "Semantic Action")


def format_trace(tracer: Tracer, include_stacks: bool = False) -> str:
    """Render the collected steps as the appendix's three-column table."""
    headers = list(HEADERS)
    rows = [entry.row() for entry in tracer.entries]
    if include_stacks:
        headers.append("Stack")
        for entry, row in zip(tracer.entries, rows):
            row.append(entry.stack)

    widths = [len(h) for h in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)
