"""Semantic descriptors — the attributes riding the parse stack.

"Within the pattern matcher, each encapsulating reduction condenses the
semantic attributes of the pattern into a signature associated with the
left-hand side non-terminal" (section 5.2).  A :class:`Descriptor` is that
signature: enough information for the instruction generator to print an
assembler operand and to check idioms, and nothing else — all
communication between phases flows through these.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from ..ir.ops import Cond
from ..ir.types import MachineType


class DKind(enum.Enum):
    """What kind of locatable thing a descriptor denotes."""

    REG = "reg"            # an allocatable register
    DREG = "dreg"          # a dedicated register (fp, ap, sp, r11...)
    MEM = "mem"            # a directly addressable memory operand
    IMM = "imm"            # an immediate constant
    ADDR = "addr"          # a condensed addressing-mode phrase
    LABEL = "label"        # a branch target
    CC = "cc"              # a condition-code setting (test context)
    VOID = "void"          # statement-level: no value
    OPCLASS = "opclass"    # an operator-class non-terminal (binop ...)


@dataclass(eq=False)
class Descriptor:
    """One semantic signature.

    Descriptors are *mutable cells* with identity semantics: the register
    manager patches the descriptor of a spilled register in place, so
    every stack slot referencing it sees the new (memory) location — this
    is how "registers are always spilled to compiler generated variables"
    stays coherent while values sit mid-pattern on the parse stack.

    Attributes
    ----------
    kind:
        Classification used by idiom checks and the register manager.
    ty:
        Machine type of the value.
    text:
        The assembler rendering of the operand (``r0``, ``_a``, ``$27``,
        ``-4(fp)``, ``(r1)[r2]``).  Condensation means exactly: build this
        string (plus the bookkeeping fields) and forget the subtree.
    value:
        Constant value when known (immediates), for range idioms.
    register:
        Register name when the operand lives in (or is addressed through)
        an allocatable register the manager should track.
    index_register:
        Second tracked register for indexed modes.
    cond:
        Comparison condition, for CC descriptors.
    side_effected:
        Set once an autoincrement/decrement side effect has been consumed,
        so "any subsequent reference will refer to the same location"
        (section 6.1).
    """

    kind: DKind
    ty: MachineType
    text: str = ""
    value: Union[int, float, None] = None
    register: Optional[str] = None
    index_register: Optional[str] = None
    cond: Optional[Cond] = None
    side_effected: bool = False
    signed: bool = True
    spilled: bool = False  # set when the register manager evicted this value
    #: False when the *last emitted instruction* does not leave this value's
    #: condition codes set (e.g. ediv's codes reflect the quotient, not the
    #: remainder) — the implicit-condition-code branch must then tst first.
    cc_valid: bool = True
    #: For autoincrement/decrement modes: the plain (side-effect-free)
    #: operand text any *subsequent* reference must use, so the side effect
    #: happens exactly once (section 6.1).
    after_text: Optional[str] = None

    # ----------------------------------------------------------- queries
    @property
    def is_constant(self) -> bool:
        return self.kind is DKind.IMM and self.value is not None

    @property
    def is_register(self) -> bool:
        return self.kind in (DKind.REG, DKind.DREG)

    @property
    def is_memory(self) -> bool:
        return self.kind in (DKind.MEM, DKind.ADDR)

    def same_location(self, other: "Descriptor") -> bool:
        """Do the two descriptors name the identical location?  This is
        the binding-idiom test (section 5.3.2)."""
        if self.kind is not other.kind:
            return False
        return self.text == other.text and self.text != ""

    # ---------------------------------------------------------- mutation
    def with_text(self, text: str) -> "Descriptor":
        return replace(self, text=text)

    def with_type(self, ty: MachineType) -> "Descriptor":
        return replace(self, ty=ty)

    def consumed_side_effect(self) -> "Descriptor":
        return replace(self, side_effected=True)

    def __str__(self) -> str:
        return self.text or f"<{self.kind.value}.{self.ty.suffix}>"


def imm(value: Union[int, float], ty: MachineType) -> Descriptor:
    """An immediate-constant descriptor, printed with the ``$`` prefix."""
    return Descriptor(DKind.IMM, ty, text=f"${value}", value=value)


def mem(text: str, ty: MachineType, register: Optional[str] = None) -> Descriptor:
    return Descriptor(DKind.MEM, ty, text=text, register=register)


def regdesc(register: str, ty: MachineType) -> Descriptor:
    return Descriptor(DKind.REG, ty, text=register, register=register)


def dregdesc(register: str, ty: MachineType) -> Descriptor:
    return Descriptor(DKind.DREG, ty, text=register, register=register)


def labeldesc(name: str) -> Descriptor:
    return Descriptor(DKind.LABEL, MachineType.LONG, text=name)


def void() -> Descriptor:
    return Descriptor(DKind.VOID, MachineType.LONG)
