"""The instruction pattern matcher — dynamic half of the system."""

from .descriptors import (
    Descriptor, DKind, dregdesc, imm, labeldesc, mem, regdesc, void,
)
from .engine import (
    ENGINES, MatchError, Matcher, MatchResult, ReductionLoop,
    SemanticActions, SyntacticBlock, resolve_engine,
)
from .trace import HEADERS, NullTracer, TraceEntry, Tracer, format_trace

__all__ = [
    "Descriptor", "DKind", "imm", "mem", "regdesc", "dregdesc", "labeldesc",
    "void",
    "Matcher", "MatchResult", "MatchError", "SyntacticBlock", "ReductionLoop",
    "SemanticActions", "ENGINES", "resolve_engine",
    "Tracer", "NullTracer", "TraceEntry", "format_trace", "HEADERS",
]
