"""R32 semantic actions.

The load/store discipline makes these routines dramatically shorter than
the VAX's: there are no addressing phrases to condense, no memory-operand
instruction forms, no condition-code bookkeeping and no library-call
pseudo-instructions (the R32 has real unsigned divide hardware).  What
remains is the irreducible core — allocate a destination register, pick
the cluster, format the instruction — which is exactly the part the
paper's Figure 3 walk describes.

The target-neutral machinery (descriptor construction on shift, tag-head
dispatch, ``choose``, phase-1 reservations, the shared encapsulating
handlers) lives in :class:`repro.targets.semantics.BaseSemantics`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Sequence

from ..ir.ops import Cond
from ..ir.types import MachineType
from ..matcher.descriptors import Descriptor, DKind, mem, void
from ..targets.base import TargetSemanticError
from ..targets.insttable import Selection, select_variant
from ..targets.semantics import BaseSemantics, CodeBuffer
from .insttable import R32_INSTRUCTION_TABLE
from .machine import R32, R32Machine

__all__ = ["CodeBuffer", "R32SemanticError", "R32Semantics"]


class R32SemanticError(TargetSemanticError):
    """An emitting reduction could not be realised."""


#: Branch mnemonic per condition.
_BRANCH = {cond: f"b{cond.value}" for cond in Cond}

#: Integer widenings with a zero-extending form for unsigned sources.
_CVTU = {("b", "w"), ("b", "l"), ("w", "l")}

_FLOAT_SUFFIXES = ("f", "d")


class R32Semantics(BaseSemantics):
    """The full semantic-attribute evaluator for the R32 description."""

    error = R32SemanticError

    def __init__(
        self,
        machine: R32Machine = R32,
        buffer: Optional[CodeBuffer] = None,
        new_temp: Optional[Callable[[], str]] = None,
    ) -> None:
        super().__init__(machine, buffer=buffer, new_temp=new_temp)

    def _emit_selection(self, selection: Selection) -> str:
        operands = ",".join(self._use(d) for d in selection.operands)
        line = f"{selection.mnemonic} {operands}"
        self.buffer.emit(line)
        return line

    def _cluster(self, name: str):
        try:
            return R32_INSTRUCTION_TABLE[name]
        except KeyError:
            raise R32SemanticError(f"no instruction cluster {name!r}") from None

    # ======================================================== encapsulation
    def _h_lv(self, production, kids, rest):
        # the Indir token (kids[0]) carries the exact node type, including
        # the signedness the grammar suffix cannot encode
        ty = kids[0].ty if kids else self._result_type(production)
        if rest in ("name", "temp"):
            return kids[0]
        if rest == "regdef":
            base = kids[1]
            self.registers.hold(base.register)
            return replace(
                mem(f"({base.text})", ty, register=base.register),
                signed=ty.signed,
            )
        raise R32SemanticError(f"unknown lval form {rest!r}")

    def _h_aname(self, production, kids, rest):
        """Address of a global: an immediate address constant ``$_x`` for
        the ``la`` instruction to materialise."""
        symbol = f"_{kids[1].text.lstrip('_')}"
        return Descriptor(
            DKind.IMM, MachineType.LONG, text=f"${symbol}", value=symbol,
        )

    # ============================================================= emission
    def _h_la(self, production, kids, rest):
        phrase = kids[0]
        dest = self._alloc(MachineType.LONG, kids)
        line = f"la {self._use(phrase)},{dest.text}"
        self.buffer.emit(line)
        return dest, line

    def _h_load(self, production, kids, rest):
        source = kids[0]
        ty = self._result_type(production)
        dest = self._alloc(ty, kids)
        mnemonic = "mv" if source.is_register else "ld"
        line = f"{mnemonic}.{rest} {self._use(source)},{dest.text}"
        self.buffer.emit(line)
        return dest, line

    def _h_li(self, production, kids, rest):
        source = kids[0]
        ty = self._result_type(production)
        dest = self._alloc(ty, kids)
        line = f"li.{rest} {self._use(source)},{dest.text}"
        self.buffer.emit(line)
        return dest, line

    def _h_widen(self, production, kids, rest):
        return self._convert(production, kids, kids[0], rest)

    def _h_conv(self, production, kids, rest):
        return self._convert(production, kids, kids[1], rest)

    def _convert(self, production, kids, source, rest):
        src_suffix, dst_suffix = rest.split(".")
        ty = self._result_type(production)
        dest = self._alloc(ty, kids)
        if not source.signed and (src_suffix, dst_suffix) in _CVTU:
            line = f"cvtu.{src_suffix}{dst_suffix} {self._use(source)},{dest.text}"
            self.buffer.emit(line)
            return dest, f"{line}  [unsigned]"
        line = f"cvt.{src_suffix}{dst_suffix} {self._use(source)},{dest.text}"
        self.buffer.emit(line)
        return dest, line

    # ------------------------------------------------- binary arithmetic
    def _h_op(self, production, kids, rest):
        opname, suffix = rest.rsplit(".", 1)
        sources = [kids[1], kids[2]]
        return self._binary(production, kids, opname, suffix, sources)

    def _h_rop(self, production, kids, rest):
        opname, suffix = rest.rsplit(".", 1)
        # reversed operator: the pattern's operands arrived swapped
        sources = [kids[2], kids[1]]
        return self._binary(production, kids, opname, suffix, sources)

    def _binary(self, production, kids, opname, suffix, sources):
        operator = kids[0]
        name = f"{opname}.{suffix}"
        if opname == "div" and suffix not in _FLOAT_SUFFIXES:
            # real unsigned divide hardware, unlike the VAX's library call
            name = f"div{'s' if operator.signed else 'u'}.{suffix}"
        elif opname == "mod":
            name = f"rem{'s' if operator.signed else 'u'}.{suffix}"
        ty = self._result_type(production)
        dest = self._alloc(ty, kids)
        selection = select_variant(self._cluster(name), dest, sources)
        return dest, self._emit_selection(selection)

    # -------------------------------------------------------------- unary
    def _h_un(self, production, kids, rest):
        opname, suffix = rest.rsplit(".", 1)
        ty = self._result_type(production)
        dest = self._alloc(ty, kids)
        line = f"{opname}.{suffix} {self._use(kids[1])},{dest.text}"
        self.buffer.emit(line)
        return dest, line

    # -------------------------------------------------------------- shifts
    def _h_shift(self, production, kids, rest):
        if rest in ("lsh", "rsh"):
            src, count = kids[1], kids[2]
        else:  # rlsh / rrsh: operands arrived swapped
            src, count = kids[2], kids[1]
        operator = kids[0]
        if rest.endswith("rsh"):
            mnemonic = "sra" if operator.signed else "srl"
        else:
            mnemonic = "sll"
        dest = self._alloc(MachineType.LONG, kids)
        line = f"{mnemonic} {self._use(src)},{self._use(count)},{dest.text}"
        self.buffer.emit(line)
        return dest, line

    # --------------------------------------------------------- assignment
    def _h_asg(self, production, kids, rest):
        return self._assign(kids, dest=kids[1], source=kids[2],
                            suffix=rest, as_value=False)

    def _h_asgv(self, production, kids, rest):
        return self._assign(kids, dest=kids[1], source=kids[2],
                            suffix=rest, as_value=True)

    def _h_rasg(self, production, kids, rest):
        return self._assign(kids, dest=kids[2], source=kids[1],
                            suffix=rest, as_value=False)

    def _h_rasgv(self, production, kids, rest):
        return self._assign(kids, dest=kids[2], source=kids[1],
                            suffix=rest, as_value=True)

    def _assign(self, kids, dest, source, suffix, as_value):
        if source.same_location(dest):
            note = "store elided (source is destination)"
        elif dest.is_register:
            note = f"mv.{suffix} {self._use(source)},{self._use(dest)}"
            self.buffer.emit(note)
        else:
            note = f"st.{suffix} {self._use(source)},{self._use(dest)}"
            self.buffer.emit(note)
        if as_value:
            # free only the source's registers; the destination descriptor
            # survives as the expression's value
            self.registers.free_sources((source,))
            return dest, note
        self._free_all(kids)
        return void(), note

    # ------------------------------------------------------------ branches
    def _h_cmpbr(self, production, kids, rest):
        return self._compare_branch(kids, left=kids[2], right=kids[3],
                                    cmp_op=kids[1], label=kids[4], suffix=rest)

    def _h_rcmpbr(self, production, kids, rest):
        # Rcmp: the original comparison was Cmp(right, left)
        return self._compare_branch(kids, left=kids[3], right=kids[2],
                                    cmp_op=kids[1], label=kids[4], suffix=rest)

    def _compare_branch(self, kids, left, right, cmp_op, label, suffix):
        cond = cmp_op.cond or Cond.NE
        self.buffer.emit(f"cmp.{suffix} {self._use(left)},{self._use(right)}")
        self.buffer.emit(f"{_BRANCH[cond]} {label.text}")
        self._free_all(kids)
        return void(), f"cmp.{suffix}; {_BRANCH[cond]} {label.text}"

    def _h_jump(self, production, kids, rest):
        label = kids[1]
        self.buffer.emit(f"jmp {label.text}")
        return void(), f"jmp {label.text}"

    # --------------------------------------------------------------- calls
    def _h_arg(self, production, kids, rest):
        source = kids[1]
        if rest == "l":
            line = f"push {self._use(source)}"
        else:
            line = f"push.{rest} {self._use(source)}"
        self.buffer.emit(line)
        self._free_all(kids)
        return void(), line

    def _h_call(self, production, kids, rest):
        callee = kids[0].value
        argc = kids[1].value
        line = f"call ${argc},_{callee}"
        self.buffer.emit(line)
        self._free_all(kids)
        return void(), line

    def _h_callasg(self, production, kids, rest):
        dest = kids[1]
        callee = kids[2].value
        argc = kids[3].value
        self.buffer.emit(f"call ${argc},_{callee}")
        note = f"call ${argc},_{callee}"
        if dest.is_register and dest.register == "r0":
            pass
        elif dest.is_register:
            self.buffer.emit(f"mv.{rest} r0,{self._use(dest)}")
            note += f"; mv.{rest} r0"
        else:
            self.buffer.emit(f"st.{rest} r0,{self._use(dest)}")
            note += f"; st.{rest} r0"
        self._free_all(kids)
        return void(), note

    def _h_ret(self, production, kids, rest):
        source = kids[1]
        if not (source.is_register and source.register == "r0"):
            self.buffer.emit(f"mv.{rest} {self._use(source)},r0")
        self.buffer.emit("ret")
        self._free_all(kids)
        return void(), "return value in r0"
