"""The R32 :class:`~repro.targets.base.Target` registration entry."""

from __future__ import annotations

from ..targets.base import Target
from .grammar_gen import build_r32_grammar, r32_grammar_text
from .insttable import R32_INSTRUCTION_TABLE
from .machine import R32
from .semantics import R32SemanticError, R32Semantics


def _make_simulator(program, max_steps: int = 2_000_000):
    from ..sim.r32 import R32Cpu
    return R32Cpu(program, max_steps=max_steps)


def build_target() -> Target:
    return Target(
        name="r32",
        machine=R32,
        grammar_text=r32_grammar_text,
        build_grammar=build_r32_grammar,
        instruction_table=R32_INSTRUCTION_TABLE,
        make_semantics=R32Semantics,
        semantic_error=R32SemanticError,
        make_simulator=_make_simulator,
        supports_pcc=False,
    )
