"""The R32 target: a clean load/store machine behind the same tables.

The paper's retargetability claim, exercised: the code generator proper
(phases 1-4, the SLR constructor, the matcher engines) is untouched; the
R32 contributes only a description grammar, an instruction table, a
machine model, semantic routines and a simulator back end — the same
artifact list the VAX provides, registered under ``--target r32``.

The machine itself is deliberately RISC-shaped where the VAX is CISC:
three-operand register-register arithmetic, memory reached only through
``ld``/``st``, one addressing mode (register indirect, plus the
assembler's symbolic and frame displacements), no condition-code
side effects from moves, and real unsigned divide/remainder instructions
instead of library calls.
"""

from .grammar_gen import build_r32_grammar, r32_grammar_text
from .insttable import R32_INSTRUCTION_TABLE
from .machine import R32, R32Machine
from .semantics import R32SemanticError, R32Semantics
from .target import build_target

__all__ = [
    "R32",
    "R32Machine",
    "R32SemanticError",
    "R32Semantics",
    "R32_INSTRUCTION_TABLE",
    "build_r32_grammar",
    "build_target",
    "r32_grammar_text",
]
