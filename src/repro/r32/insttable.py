"""The R32 instruction table: the flat end of Figure 3's spectrum.

Each entry is a single three-operand variant — a load/store machine has
no two-operand binding forms and no inc/dec/clr range idioms to drop to,
so every cluster walk ends on its first row.  The value of routing the
R32 through the same :func:`~repro.targets.insttable.select_variant`
machinery is the *shape*: the semantic routines are written against the
identical table interface on both targets, which is what lets the Figure
3 walk stay target-independent.

Signed/unsigned division and remainder are separate entries (``divs`` /
``divu``, ``rems``/``remu``): the R32 has real unsigned divide hardware
where the VAX calls a library routine (section 5.3.2), and the semantic
routine picks the cluster by the operator's signedness attribute.
"""

from __future__ import annotations

from typing import Dict

from ..targets.insttable import Cluster, Variant

__all__ = ["R32_INSTRUCTION_TABLE", "build_instruction_table"]

_INT_SUFFIXES = ("b", "w", "l")
_FLOAT_SUFFIXES = ("f", "d")


def _flat(name: str, mnemonic: str, commutes: bool) -> Cluster:
    return Cluster(
        name=name,
        variants=(Variant(mnemonic, operands=3, commutes=commutes),),
    )


def build_instruction_table() -> Dict[str, Cluster]:
    table: Dict[str, Cluster] = {}
    for suffix in _INT_SUFFIXES:
        for op, commutes in (
            ("add", True), ("sub", False), ("mul", True),
            ("or", True), ("xor", True), ("and", True),
        ):
            name = f"{op}.{suffix}"
            table[name] = _flat(name, name, commutes)
        for op in ("divs", "divu"):
            name = f"{op}.{suffix}"
            table[name] = _flat(name, name, commutes=False)
    for op in ("rems", "remu"):
        name = f"{op}.l"
        table[name] = _flat(name, name, commutes=False)
    for suffix in _FLOAT_SUFFIXES:
        for op, commutes in (
            ("add", True), ("sub", False), ("mul", True), ("div", False),
        ):
            name = f"{op}.{suffix}"
            table[name] = _flat(name, name, commutes)
    return table


#: The table the semantic routines consult.
R32_INSTRUCTION_TABLE = build_instruction_table()
