"""The R32 machine model.

The register *names* and calling linkage are shared with the VAX (the
assembler's operand syntax and the simulator's frame layout are reused
verbatim); what differs is the instruction shape.  The R32 is a pure
load/store machine: no memory operands in arithmetic, no autoincrement
addressing modes, spills move through ``st``/``ld`` rather than ``mov``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..targets.base import Machine


@dataclass(frozen=True)
class R32Machine(Machine):
    """Static description of the R32 target used across the back end."""

    name: str = "r32"

    #: No autoincrement/autodecrement hardware: phase 1a expands
    #: ``*p++``-shaped trees into explicit pointer arithmetic instead of
    #: leaving them for the (non-existent) addressing-mode patterns.
    has_autoincrement: bool = False

    #: Spills and reloads are stores and loads, as on any load/store
    #: machine.
    spill_store: str = "st.{suffix} {register},{temp}"
    spill_load: str = "ld.{suffix} {temp},{register}"


#: The default machine instance used throughout the package.
R32 = R32Machine()
