"""The R32 machine-description grammar.

The point of this description is what it *lacks*.  Where the VAX grammar
spends most of its productions on addressing phrases (``disp``, ``dx``,
autoincrement) and memory-operand instruction forms, the R32 is a
load/store machine: every operator takes registers, memory is reached
only through ``ld``/``st``, and the single addressing mode is register
indirect (plus the assembler-level symbolic and frame displacements the
``lval`` leaves carry).  The code generator proper — the SLR constructor,
the matcher engines, phases 1 and 3c — is untouched; retargeting is this
text plus the semantic routines, exactly the paper's claim.

Structure mirrors :mod:`repro.vax.grammar_gen` so the two descriptions
can be read side by side:

* **Classes**: ``A`` (integer) and ``F`` (float) as on the VAX, but no
  ``Y``/``q`` — the R32 has no quadword data and no scaled-index modes,
  so the syntactic scale constants never appear.
* **Factoring** (section 4): only three operand non-terminals survive —
  ``con``, ``lval`` and ``reg``.  There is no ``rval``: an operand
  position *is* a register, and constants/locations reach it through the
  ``li``/``ld`` chain productions, which is where the load/store
  instruction tax shows up in the E2 instruction counts.
* **Overfactoring** (section 6.2.1): the VAX's condition-code repairs do
  not apply — the R32 always compares explicitly — but the ordering
  lesson does: the ``reg <- Dreg/Reg`` chains precede the ``lval``
  chains so rvalue-context ties classify a register operand as ``reg``.
* **Reversed operators** (section 5.1.3): same tags as the VAX; the
  semantic routines re-order the computed values.
"""

from __future__ import annotations

from ..targets.grammar import GrammarBundle, build_grammar_bundle

#: Conversion endpoints for the generated cross product (no quad).
CONVERSION_TYPES = ("b", "w", "l", "f", "d")

GRAMMAR_HEADER = """\
%start stmt
%class A b w l
%class F f d
%class M b w l f d
"""

LEAVES = """\
# --- constants -------------------------------------------------------------
# Constant widening first: ties against the li chain resolve to these
# (cost 0) at run time, so byte literals widen for free.
con.w <- con.b :: glue !conw.w
con.l <- con.w :: glue !conw.l
con.$A <- Const.$A :: encap !con
con.$A <- Zero.$A :: encap !con
con.$A <- One.$A :: encap !con
con.$A <- Two.$A :: encap !con
con.$A <- Four.$A :: encap !con
con.$A <- Eight.$A :: encap !con
con.$F <- Const.$F :: encap !con

# --- registers -------------------------------------------------------------
# reg chains listed before the lval chains: in an rvalue context the
# runtime tie prefers the earlier (reg) classification, in a destination
# context only the lval classification is viable (section 6.2.1's
# ordering lesson, without the condition-code half of the problem).
reg.$M <- Dreg.$M :: glue !regleaf
reg.$M <- Reg.$M :: glue !regleaf
lval.$M <- Dreg.$M :: glue !regleaf
lval.$M <- Reg.$M :: glue !regleaf

# --- directly addressable locations ---------------------------------------
lval.$M <- Name.$M :: encap !lv.name
lval.$M <- Temp.$M :: encap !lv.temp
"""

# ---------------------------------------------------------------------------
# Addressing: one mode.  A pointer value lives in a register; dereference
# is register indirect.  Address arithmetic is ordinary Plus/Mul trees
# through the integer ALU — there are no address phrases to factor, no
# shift-preference commitments, and therefore no rescue bridges.
# ---------------------------------------------------------------------------
ADDRESSING = """\
# --- addressing ------------------------------------------------------------
acon.l <- Addrof.l Name.$M :: encap !aname
reg.l <- acon.l :: emit "la %1,%0" @1 !la
lval.$M <- Indir.$M reg.l :: encap !lv.regdef
"""

OPERANDS = """\
# --- loads: the load/store tax (every operand reaches a register) -----------
reg.$M <- lval.$M :: emit "ld.$M %1,%0" @1 !load.$M
reg.$A <- con.$A :: emit "li.$A %1,%0" @1 !li.$A
reg.$F <- con.$F :: emit "li.$F %1,%0" @1 !li.$F

# --- implicit widenings (front ends rarely emit Conv; section 6.4) ----------
# Direct b->l precedes b->w: runtime ties prefer the earlier production.
reg.l <- reg.b :: emit "cvt.bl %1,%0" @1 !widen.b.l
reg.l <- reg.w :: emit "cvt.wl %1,%0" @1 !widen.w.l
reg.w <- reg.b :: emit "cvt.bw %1,%0" @1 !widen.b.w
reg.d <- reg.f :: emit "cvt.fd %1,%0" @1 !widen.f.d
"""

ARITH = """\
# --- three-operand register arithmetic --------------------------------------
reg.$A <- Plus.$A reg.$A reg.$A :: emit "add.$A %2,%3,%0" @1 !op.add.$A
reg.$A <- Minus.$A reg.$A reg.$A :: emit "sub.$A %2,%3,%0" @1 !op.sub.$A
reg.$A <- Mul.$A reg.$A reg.$A :: emit "mul.$A %2,%3,%0" @1 !op.mul.$A
reg.$A <- Div.$A reg.$A reg.$A :: emit "div.$A %2,%3,%0" @1 !op.div.$A
reg.$A <- Or.$A reg.$A reg.$A :: emit "or.$A %2,%3,%0" @1 !op.or.$A
reg.$A <- Xor.$A reg.$A reg.$A :: emit "xor.$A %2,%3,%0" @1 !op.xor.$A
reg.$A <- And.$A reg.$A reg.$A :: emit "and.$A %2,%3,%0" @1 !op.and.$A
reg.l <- Mod.l reg.l reg.l :: emit "rem.l %2,%3,%0" @1 !op.mod.l
reg.$F <- Plus.$F reg.$F reg.$F :: emit "add.$F %2,%3,%0" @1 !op.add.$F
reg.$F <- Minus.$F reg.$F reg.$F :: emit "sub.$F %2,%3,%0" @1 !op.sub.$F
reg.$F <- Mul.$F reg.$F reg.$F :: emit "mul.$F %2,%3,%0" @1 !op.mul.$F
reg.$F <- Div.$F reg.$F reg.$F :: emit "div.$F %2,%3,%0" @1 !op.div.$F

# --- unary -------------------------------------------------------------------
reg.$A <- Neg.$A reg.$A :: emit "neg.$A %2,%0" @1 !un.neg.$A
reg.$F <- Neg.$F reg.$F :: emit "neg.$F %2,%0" @1 !un.neg.$F
reg.$A <- Compl.$A reg.$A :: emit "not.$A %2,%0" @1 !un.not.$A

# --- shifts (long only; constant left shifts became Mul in phase 1b) --------
reg.l <- Lsh.l reg.l reg.l :: emit "sll %2,%3,%0" @1 !shift.lsh
reg.l <- Rsh.l reg.l reg.l :: emit "sra %2,%3,%0" @1 !shift.rsh
"""

ASSIGN = """\
# --- assignment (st to memory, mv register-to-register) ----------------------
stmt <- Assign.$M lval.$M reg.$M :: emit "st.$M %3,%2" @1 !asg.$M
# assignment as a value, for chained a = b = c
lval.$M <- Assign.$M lval.$M reg.$M :: emit "st.$M %3,%2" @1 !asgv.$M
"""

BRANCHES = """\
# --- compare and branch ------------------------------------------------------
# No condition-code idioms: the R32 always compares explicitly, so the
# VAX's section-6.2.1 overfactoring repairs have nothing to repair.
stmt <- Cbranch.l Cmp.$A reg.$A reg.$A Label :: emit "cmp.$A %3,%4 ; b? %5" @2 !cmpbr.$A
stmt <- Cbranch.l Cmp.$F reg.$F reg.$F Label :: emit "cmp.$F %3,%4 ; b? %5" @2 !cmpbr.$F
stmt <- Jump.l Label :: emit "jmp %2" @1 !jump
"""

CALLS = """\
# --- calls, arguments, returns ------------------------------------------------
stmt <- Arg.l reg.l :: emit "push %2" @1 !arg.l
stmt <- Arg.$F reg.$F :: emit "push.$F %2" @1 !arg.$F
stmt <- Call.$M con.l :: emit "call %2,%v" @1 !call.$M
stmt <- Assign.$M lval.$M Call.$M con.l :: emit "call %4,%v ; mv.$M r0,%2" @2 !callasg.$M
stmt <- Return.$M reg.$M :: emit "mv.$M %2,r0 ; ret" @2 !ret.$M

# --- statement glue -----------------------------------------------------------
# All three discard classifications are listed: with no rval factoring a
# discarded lval/con must not be forced through a ld/li just to be dropped
# (the cost-0 glue wins the runtime tie against the chain productions).
stmt <- Expr.$M lval.$M :: glue !drop
stmt <- Expr.$A con.$A :: glue !drop
stmt <- Expr.$F con.$F :: glue !drop
stmt <- Expr.$M reg.$M :: glue !drop
stmt <- Reghint.l Reg.l :: glue !reghint
"""

# Reversed operators (phase 1c, section 5.1.3): operands arrive swapped and
# the semantic routines must "order the computed values properly".
REVERSED = """\
reg.$A <- Rminus.$A reg.$A reg.$A :: emit "sub.$A %3,%2,%0" @1 !rop.sub.$A
reg.$A <- Rdiv.$A reg.$A reg.$A :: emit "div.$A %3,%2,%0" @1 !rop.div.$A
reg.$F <- Rminus.$F reg.$F reg.$F :: emit "sub.$F %3,%2,%0" @1 !rop.sub.$F
reg.$F <- Rdiv.$F reg.$F reg.$F :: emit "div.$F %3,%2,%0" @1 !rop.div.$F
reg.l <- Rmod.l reg.l reg.l :: emit "rem.l %3,%2,%0" @1 !rop.mod.l
reg.l <- Rlsh.l reg.l reg.l :: emit "sll %3,%2,%0" @1 !shift.rlsh
reg.l <- Rrsh.l reg.l reg.l :: emit "sra %3,%2,%0" @1 !shift.rrsh
stmt <- Rassign.$M reg.$M lval.$M :: emit "st.$M %2,%3" @1 !rasg.$M
lval.$M <- Rassign.$M reg.$M lval.$M :: emit "st.$M %2,%3" @1 !rasgv.$M
stmt <- Cbranch.l Rcmp.$A reg.$A reg.$A Label :: emit "cmp.$A %4,%3 ; b? %5" @2 !rcmpbr.$A
stmt <- Cbranch.l Rcmp.$F reg.$F reg.$F Label :: emit "cmp.$F %4,%3 ; b? %5" @2 !rcmpbr.$F
"""


def conversion_productions() -> str:
    """The conversion cross product (section 6.4), generated rather than
    hand-written; register-to-register only — there are no fused
    convert-and-store forms on a load/store machine."""
    lines = ["# --- data-type conversion cross product (section 6.4) ---"]
    for src in CONVERSION_TYPES:
        for dst in CONVERSION_TYPES:
            if src == dst:
                continue
            lines.append(
                f"reg.{dst} <- Conv.{dst} reg.{src} :: "
                f'emit "cvt.{src}{dst} %2,%0" @1 !conv.{src}.{dst}'
            )
    return "\n".join(lines) + "\n"


def r32_grammar_text(
    reversed_ops: bool = True,
    overfactoring_fix: bool = True,
    rescue_bridges: bool = True,
) -> str:
    """Assemble the full machine-description text.

    ``overfactoring_fix`` and ``rescue_bridges`` are accepted so every
    target offers the same experiment surface, but both are no-ops here:
    the R32 grammar has no condition-code chains to repair and no
    shift-preference commitments to rescue.
    """
    del overfactoring_fix, rescue_bridges
    parts = [GRAMMAR_HEADER, LEAVES, ADDRESSING, OPERANDS,
             conversion_productions(), ARITH, ASSIGN, BRANCHES, CALLS]
    if reversed_ops:
        parts.append(REVERSED)
    return "\n".join(parts)


def build_r32_grammar(
    reversed_ops: bool = True,
    overfactoring_fix: bool = True,
    rescue_bridges: bool = True,
) -> GrammarBundle:
    """Parse, replicate, and sanity-check the R32 description."""
    return build_grammar_bundle(
        r32_grammar_text(reversed_ops, overfactoring_fix, rescue_bridges)
    )
