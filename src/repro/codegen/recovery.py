"""The runtime block-recovery ladder.

The paper repaired blocking *statically*: Graham, Henry and Schulman added
bridge productions and default lists until the description could not block
(section 6.2.2).  A production compiler cannot assume its description is
perfect, so this module repairs *dynamically*: when a function blocks (or
its tables are corrupt, or its semantics give out), `compile_with_recovery`
walks a ladder of progressively blunter rescues and records every rung as
a structured diagnostic — a block is never silent and never fatal to the
rest of the program.

The rungs, in order:

tier 0  ``compiled``
    Only when the generator selected the compiled engine: the normal
    compile on the generated specialized matcher (which itself falls
    back to packed when generation failed).  A failure here retries on
    the packed interpreter below (RECOVER-PACKED).
tier 0/1  ``packed``
    The normal compile on the packed integer matcher.  When the packed
    runtime fails its integrity checksum this rung — and the compiled
    rung, which is generated from the same tables — is skipped outright
    (GG-TABLE-CORRUPT) rather than trusted to crash.
tier 1  ``dict``
    Retry on the original dict-table matcher (``engine="dict"``).
    The dict loop shares no state with the packed arrays, so corrupt or
    miscoded packed tables are fully rescued here (RECOVER-DICT).
tier 2  ``hoist``
    The "deus ex machina" repair: the runtime analogue of a bridge
    production.  The subtree under the blocked lookahead token is hoisted
    into a fresh compiler temporary by a prelude ``Assign`` statement and
    replaced by that temporary, exactly what the static bridge
    ``reg.l <- disp.l`` does to a stranded address phrase — then the whole
    function is regenerated.  Leaf and lvalue-position nodes escalate to
    their parent so the hoist always changes the token stream and never
    turns a store destination into a loaded value (RECOVER-FORCE).
tier 3  ``pcc``
    Degrade the single function to the PCC baseline backend
    (RECOVER-PCC).  Only if PCC *also* fails does the function become a
    :class:`FailedFunction` (FN-FAILED), whose assembly is an inert
    comment block so the rest of the program still assembles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..diag import codes
from ..diag.diagnostics import Diagnostic
from ..ir.ops import Op
from ..ir.tree import Forest, Node
from ..matcher.engine import (
    MatchError, ReductionLoop, SemanticBlock, SyntacticBlock,
)
from ..obs.metrics import REGISTRY as METRICS
from ..pcc.codegen import pcc_compile
from ..targets.semantics import TargetSemanticError

#: Frame area for hoisted-operand temporaries, between the ordinary temp
#: area (-2048 down) and the spill area (-3584 down).  Slots are assigned
#: here directly (the names already end in ``(fp)``) so a regeneration
#: pass never double-books them against ordinary temps.
HOIST_AREA_BASE = -3072

#: Hoist attempts before giving up on tier 2.  Each attempt removes at
#: least one token from under the blocked position, so a handful suffices
#: for any realistic block; the bound only guards pathological trees.
MAX_HOISTS = 8


@dataclass
class FailedFunction:
    """Stands in for a CompileResult when every rung failed.

    The assembly is a pure comment block (the assembler strips ``#``
    lines), so a program containing a failed function still assembles —
    callers must consult ``ok``/diagnostics before running it.
    """

    name: str
    reason: str
    ok: bool = False
    instruction_count: int = 0

    @property
    def assembly(self) -> str:
        return (
            f"# function {self.name}: compilation failed\n"
            f"# {self.reason}\n"
        )


@dataclass
class LadderOutcome:
    """What the ladder produced for one function."""

    name: str
    result: object  # CompileResult | PccResult | FailedFunction
    tier: str       # "compiled" | "packed" | "dict" | "hoist" | "pcc"
                    # | "failed"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.tier != "failed"

    @property
    def recovered(self) -> bool:
        """True when a rescue rung (not the engine the generator asked
        for) produced the result.  A compiled-engine generator settling
        on ``packed`` *is* a recovery — the compiled rung failed."""
        if not self.ok:
            return False
        return self.tier not in ("compiled", "packed") or any(
            diag.code in (codes.RECOVER_PACKED, codes.RECOVER_DICT)
            for diag in self.diagnostics
        )


def _finish(outcome: "LadderOutcome") -> "LadderOutcome":
    """Record which rung settled the function before handing it back."""
    METRICS.inc(f"recovery.tier.{outcome.tier}")
    if outcome.recovered:
        METRICS.inc("recovery.rescued")
    return outcome


def _demote_errors(diags: List[Diagnostic]) -> List[Diagnostic]:
    """Downgrade error diagnostics to warnings after a successful rescue.

    A block that a later rung survived is history, not an error: the
    record (and its code) stays for the post mortem, but it must not make
    a compiled function read as failed.
    """
    for diag in diags:
        if diag.severity == codes.ERROR:
            diag.severity = codes.WARNING
    return diags


def _block_diagnostic(exc: Exception, function: str) -> Diagnostic:
    """Map a matcher exception onto its diagnostic code, with context."""
    if isinstance(exc, SyntacticBlock):
        code = codes.GG_BLOCK_SYN
    elif isinstance(exc, SemanticBlock):
        code = codes.GG_BLOCK_SEM
    elif isinstance(exc, ReductionLoop):
        code = codes.GG_REDUCE_LOOP
    else:
        code = codes.GG_SEMANTIC
    context = exc.context() if isinstance(exc, MatchError) else {}
    return Diagnostic(
        code=code, message=str(exc), function=function, context=context,
    )


def _hoist_blocked_operand(
    work: Forest, exc: SyntacticBlock, counter: int
) -> Optional[str]:
    """Hoist the blocked operand into a prelude temporary, in place.

    Returns a short description of what was hoisted, or None when no
    hoistable node exists (block not attributable to a token, node is a
    statement root, ...).
    """
    token = getattr(exc, "token", None)
    node = getattr(token, "node", None)
    if node is None:
        return None

    # Locate the statement containing the blocked node (by identity) and
    # build a parent map for the escalation walk.
    statement = None
    parents = {}
    for item in work.items:
        if not isinstance(item, Node):
            continue
        for candidate in item.preorder():
            for kid in candidate.kids:
                parents[id(kid)] = candidate
        if any(n is node for n in item.preorder()):
            statement = item
    if statement is None:
        return None

    # Escalate: a leaf hoist reproduces the identical token stream, and a
    # store destination (the lval child of an assignment) must never be
    # turned into a loaded value.
    def in_lval_position(n: Node) -> bool:
        parent = parents.get(id(n))
        if parent is None:
            return False
        if parent.op in (Op.ASSIGN,) and parent.kids and parent.kids[0] is n:
            return True
        if parent.op is Op.RASSIGN and len(parent.kids) > 1 \
                and parent.kids[1] is n:
            return True
        return False

    target = node
    while not target.kids or in_lval_position(target):
        parent = parents.get(id(target))
        if parent is None or parent is statement:
            if parent is statement and not in_lval_position(target):
                # hoisting a direct child of the statement is fine
                break
            return None
        target = parent

    hoisted = target.sexpr()
    slot = f"{HOIST_AREA_BASE - 4 * counter}(fp)"
    temp = Node(Op.TEMP, target.ty, value=slot)
    prelude = Node(Op.ASSIGN, target.ty, [temp, target.clone()])
    target.replace_with(Node(Op.TEMP, target.ty, value=slot))
    # insert by identity: Node.__eq__ is structural and could hit an
    # earlier, equal statement
    index = next(
        i for i, item in enumerate(work.items) if item is statement
    )
    work.items.insert(index, prelude)
    return hoisted


def compile_with_recovery(
    gen,
    forest: Forest,
    max_hoists: int = MAX_HOISTS,
    check_integrity: bool = True,
) -> LadderOutcome:
    """Compile *forest*, walking the recovery ladder on failure.

    *gen* is a :class:`~repro.codegen.driver.GrahamGlanvilleCodeGenerator`;
    the ladder never raises — the outcome's ``tier`` and ``diagnostics``
    say what happened.
    """
    name = forest.name
    diags: List[Diagnostic] = []
    engine0 = getattr(
        gen, "engine", "packed" if gen.use_packed else "dict"
    )

    # tier 0: the normal fast compile — unless the packed runtime fails
    # its checksum, in which case neither integer engine (the compiled
    # matcher is generated from the same tables) can be trusted to even
    # crash.
    packed_trusted = True
    if engine0 != "dict" and check_integrity:
        runtime = gen.tables.packed().runtime()
        if not runtime.verify_integrity():
            packed_trusted = False
            diags.append(Diagnostic(
                code=codes.GG_TABLE_CORRUPT,
                message="packed runtime tables failed their integrity "
                        "checksum; compiled/packed tiers skipped",
                function=name,
            ))

    first_error: Optional[Exception] = None
    compiled_failed = False
    if engine0 == "compiled" and packed_trusted:
        try:
            result = gen.compile(forest, engine="compiled")
            return _finish(LadderOutcome(name, result, "compiled", diags))
        except (MatchError, TargetSemanticError) as exc:
            first_error = exc
            compiled_failed = True
            diags.append(_block_diagnostic(exc, name))
        except Exception as exc:  # a codegen/runtime bug in the program
            first_error = exc
            compiled_failed = True
            diags.append(Diagnostic(
                code=codes.GG_TABLE_CORRUPT,
                message=f"compiled matcher crashed: {exc!r}",
                function=name,
            ))

    if engine0 != "dict" and packed_trusted:
        try:
            result = gen.compile(forest, engine="packed")
            if compiled_failed:
                # the interpreter survived what the generated program did
                # not: a genuine rescue, worth its own diagnostic code
                diags.append(Diagnostic(
                    code=codes.RECOVER_PACKED,
                    message="function recompiled on the packed "
                            "interpreter matcher",
                    function=name,
                ))
                return _finish(LadderOutcome(
                    name, result, "packed", _demote_errors(diags)
                ))
            return _finish(LadderOutcome(name, result, "packed", diags))
        except (MatchError, TargetSemanticError) as exc:
            # the twin engines block identically; don't record the same
            # MatchError twice
            if not isinstance(first_error, MatchError):
                diags.append(_block_diagnostic(exc, name))
            if first_error is None:
                first_error = exc
        except Exception as exc:  # corrupt tables crash in odd ways
            if first_error is None:
                first_error = exc
            diags.append(Diagnostic(
                code=codes.GG_TABLE_CORRUPT,
                message=f"packed matcher crashed: {exc!r}",
                function=name,
            ))

    # tier 1: the dict-table matcher shares nothing with the packed
    # arrays, so packed corruption/miscoding is fully rescued here.
    dict_error: Optional[Exception] = None
    try:
        result = gen.compile(forest, engine="dict")
        if engine0 != "dict" or not packed_trusted or first_error is not None:
            diags.append(Diagnostic(
                code=codes.RECOVER_DICT,
                message="function recompiled on the dict-table matcher",
                function=name,
            ))
            return _finish(LadderOutcome(name, result, "dict", _demote_errors(diags)))
        return _finish(LadderOutcome(name, result, "packed", diags))
    except (MatchError, TargetSemanticError) as exc:
        dict_error = exc
        if not isinstance(first_error, MatchError):
            diags.append(_block_diagnostic(exc, name))
    except Exception as exc:
        dict_error = exc
        diags.append(Diagnostic(
            code=codes.GG_SEMANTIC,
            message=f"dict matcher failed: {exc!r}",
            function=name,
        ))

    # tier 2: forced operand hoisting — only for genuine blocks with a
    # known blocked token; semantic failures go straight to PCC.
    if isinstance(dict_error, SyntacticBlock):
        try:
            work, stats = gen.transform(forest)
        except Exception:
            work = None
        hoists: List[str] = []
        while work is not None and len(hoists) < max_hoists:
            try:
                result = gen.generate(
                    work, stats, name=name, engine="dict"
                )
                diags.append(Diagnostic(
                    code=codes.RECOVER_FORCE,
                    message=(
                        f"function recompiled after hoisting "
                        f"{len(hoists)} operand(s)"
                    ),
                    function=name,
                    context={"hoisted": list(hoists)},
                ))
                METRICS.inc("recovery.hoists", len(hoists))
                return _finish(LadderOutcome(
                    name, result, "hoist", _demote_errors(diags)
                ))
            except SyntacticBlock as blocked:
                hoisted = _hoist_blocked_operand(work, blocked, len(hoists))
                if hoisted is None:
                    break
                hoists.append(hoisted)
            except Exception:
                break

    # tier 3: degrade this one function to the PCC baseline backend.
    # The PCC back end emits VAX assembly; for any other target this rung
    # would silently produce code the target's simulator cannot run, so
    # targets without PCC support skip straight to FailedFunction.
    target = getattr(gen, "target", None)
    supports_pcc = target is None or getattr(target, "supports_pcc", True)
    try:
        if not supports_pcc:
            raise RuntimeError(
                f"target {target.name!r} has no PCC baseline backend"
            )
        result = pcc_compile(forest)
        diags.append(Diagnostic(
            code=codes.RECOVER_PCC,
            message="function degraded to the PCC baseline backend",
            function=name,
        ))
        return _finish(LadderOutcome(name, result, "pcc", _demote_errors(diags)))
    except Exception as exc:
        diags.append(Diagnostic(
            code=codes.FN_FAILED,
            message=f"every recovery rung failed; last error: {exc!r}",
            function=name,
        ))
        failed = FailedFunction(
            name=name,
            reason=f"{type(exc).__name__}: {exc}",
        )
        return _finish(LadderOutcome(name, failed, "failed", diags))
