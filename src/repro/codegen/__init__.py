"""The Graham-Glanville code generator: Figure 2's phase pipeline."""

from .controlflow import (
    ControlFlowRewriter, Phase1RegisterPool, make_control_flow_explicit,
)
from .driver import (
    CompileResult, GrahamGlanvilleCodeGenerator, PhaseTimes, compile_forest,
)
from .expand import expand_operators, has_side_effects
from .ordering import OrderingStats, order_for_evaluation, su_number
from .output import AssemblyUnit, count_assembly_lines
from .peephole import PeepholeStats, optimize as peephole_optimize

__all__ = [
    "GrahamGlanvilleCodeGenerator", "CompileResult", "PhaseTimes",
    "compile_forest",
    "make_control_flow_explicit", "ControlFlowRewriter", "Phase1RegisterPool",
    "expand_operators", "has_side_effects",
    "order_for_evaluation", "OrderingStats", "su_number",
    "AssemblyUnit", "count_assembly_lines",
    "peephole_optimize", "PeepholeStats",
]
