"""Phase 4 support: assembling the complete output unit.

Individual instructions are already formatted by the semantic routines
(print templates + the addressing-mode texts condensed into descriptors);
this module wraps a routine's code with the Unix-`as`-style scaffolding —
entry point, register save mask, and storage for the compiler-generated
temporaries (the virtual registers)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..ir.types import MachineType


@dataclass
class AssemblyUnit:
    """One routine's finished assembly."""

    name: str
    body_lines: List[str] = field(default_factory=list)
    temp_sizes: Dict[str, int] = field(default_factory=dict)

    def note_temp(self, name: str, size: int = 4) -> None:
        current = self.temp_sizes.get(name, 0)
        self.temp_sizes[name] = max(current, size)

    @property
    def instruction_count(self) -> int:
        return sum(
            1 for line in self.body_lines
            if line.startswith("\t") and not line.lstrip().startswith(("#", "."))
        )

    def text(self) -> str:
        """The full unit: text segment, then temporary storage."""
        lines = [
            "\t.text",
            f"\t.globl _{self.name}",
            f"_{self.name}:",
            "\t.word 0",  # register save mask (none: r0-r5 are scratch)
        ]
        lines.extend(self.body_lines)
        if self.temp_sizes:
            lines.append("\t.data")
            for temp, size in sorted(self.temp_sizes.items()):
                lines.append(f"\t.lcomm {temp},{size}")
        return "\n".join(lines) + "\n"

    def listing(self) -> str:
        """Just the instruction body, for comparisons and tests."""
        return "\n".join(self.body_lines) + ("\n" if self.body_lines else "")


def count_assembly_lines(text: str) -> int:
    """The section-8 "lines of assembly code" metric: non-blank lines."""
    return sum(1 for line in text.splitlines() if line.strip())
