"""Phase 1c: evaluation ordering (section 5.1.3).

The instruction selector walks left to right with no backup, so a mostly
right-recursive tree could exhaust registers where its mirror image would
not.  The heuristic: "the more complicated subtree of a binary operator,
and hence the one that should be the left subtree, is the subtree with the
most nodes".  Subtrees are swapped by that measure; a non-commutative
operator whose operands were swapped is replaced by its *reversed* twin
(``Rminus``, ``Rdiv``, ``Rassign``, ...) so phase 3 can order the computed
values properly.

This phase also performs the spill-avoidance factoring: statements whose
register need (a Sethi-Ullman measure) exceeds the allocatable bank get
their heaviest subexpressions hoisted into compiler temporaries, the
moral equivalent of PCC's "insert explicit stores ... to avoid the
spill".  Function calls were already factored out by phase 1a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ir.ops import Op, OpClass
from ..ir.tree import Forest, ForestItem, LabelDef, Node
from ..targets.base import Machine
from ..targets.registry import resolve_target


@dataclass
class OrderingStats:
    """E4's "affected register allocation in less than 1% of the
    expressions" measurement hooks."""

    statements: int = 0
    swaps: int = 0
    reversed_ops: int = 0
    statements_with_swaps: int = 0
    hoisted_temps: int = 0

    @property
    def affected_fraction(self) -> float:
        if self.statements == 0:
            return 0.0
        return self.statements_with_swaps / self.statements


#: Operators that must never have their operand order disturbed.
_NO_SWAP = frozenset({
    Op.CBRANCH, Op.JUMP, Op.RETURN, Op.EXPR, Op.ARG, Op.CALL,
    Op.POSTINC, Op.POSTDEC, Op.PREINC, Op.PREDEC, Op.REGHINT,
    Op.INDIR, Op.CONV, Op.NEG, Op.COMPL, Op.ADDROF,
})


def order_for_evaluation(
    forest: Forest,
    machine: Optional[Machine] = None,
    enable_reversed: bool = True,
    register_limit: int = 0,
) -> OrderingStats:
    """Run phase 1c in place; returns the swap statistics.

    With ``enable_reversed=False`` (the E4 ablation) non-commutative
    operators are left un-swapped — only commutative swaps happen — which
    is exactly the grammar the reversed-operator experiment compares
    against.
    """
    stats = OrderingStats()
    if machine is None:
        machine = resolve_target(None).machine
    limit = register_limit or (len(machine.allocatable) - 1)
    new_items: List[ForestItem] = []
    for item in forest.items:
        if isinstance(item, LabelDef):
            new_items.append(item)
            continue
        stats.statements += 1
        before = stats.swaps
        _reorder(item, enable_reversed, stats)
        if stats.swaps != before:
            stats.statements_with_swaps += 1
        prefix = _hoist_heavy(item, forest, limit, stats)
        new_items.extend(prefix)
        new_items.append(item)
    forest.items[:] = new_items
    return stats


def _reorder(node: Node, enable_reversed: bool, stats: OrderingStats) -> None:
    for kid in node.kids:
        _reorder(kid, enable_reversed, stats)
    if node.op in _NO_SWAP or node.op.klass is not OpClass.BINARY:
        return
    if len(node.kids) != 2:
        return
    left, right = node.kids
    if not _swap_profitable(left, right):
        return
    if node.op.commutative:
        node.kids = [right, left]
        stats.swaps += 1
        return
    reversed_form = node.op.reversed_form
    if reversed_form is None or not enable_reversed:
        return
    node.kids = [right, left]
    node.op = reversed_form
    stats.swaps += 1
    stats.reversed_ops += 1


def _swap_profitable(left: Node, right: Node) -> bool:
    """Swap only when evaluating the right subtree first strictly lowers
    the register need.  (The paper states its proxy as "the subtree with
    the most nodes"; the register-need comparison is the measure that
    proxy approximates, and it keeps reversals as rare as the paper
    observed — under 1% of expressions on left-biased compiler output.)
    Evaluating a subtree whose result occupies a register makes the other
    subtree's evaluation one register more expensive."""
    su_left, su_right = su_number(left), su_number(right)
    cost_as_is = max(su_left, su_right + (1 if su_left > 0 else 0))
    cost_swapped = max(su_right, su_left + (1 if su_right > 0 else 0))
    if cost_swapped < cost_as_is:
        return True
    # Tie-break on the paper's node-count measure only when the right side
    # is substantially heavier in registers anyway.
    return su_right > su_left and cost_swapped == cost_as_is and su_left > 0


# ---------------------------------------------------------------------------
# Spill avoidance: Sethi-Ullman labelling on a memory-operand machine.
# ---------------------------------------------------------------------------

def su_number(node: Node) -> int:
    """Registers needed to evaluate *node* left-to-right without spilling.

    Leaves and addressable operands need none (VAX instructions take
    memory operands directly); an operator needs a register for its own
    result, and max/"+1 on tie" for its children — the classical measure
    adapted to two-address memory operands.
    """
    if not node.kids:
        return 0
    if is_addressable_shape(node):
        return 0
    if node.op is Op.INDIR:
        return max(1, su_number(node.kids[0]))
    needs = [su_number(kid) for kid in node.kids]
    if len(needs) == 1:
        return max(1, needs[0])
    # left-to-right, no-backup evaluation (section 5.1.3): while the right
    # subtree evaluates, the left result (if it took a register) stays live
    first, second = needs[0], needs[1]
    return max(1, first, second + (1 if first > 0 else 0))


def is_addressable_shape(node: Node) -> bool:
    """Is this operand something a single VAX operand can reference —
    a leaf, or an Indir over pure address arithmetic (displacement,
    indexed, deferred register)?  Such operands cost no registers."""
    op = node.op
    if op in (Op.NAME, Op.TEMP, Op.CONST, Op.REG, Op.DREG):
        return True
    if op is Op.ADDROF:
        return node.kids[0].op is Op.NAME
    if op is not Op.INDIR:
        return False
    return _pure_address(node.kids[0])


def _pure_address(node: Node) -> bool:
    if node.op in (Op.CONST, Op.DREG, Op.REG):
        return True
    if node.op is Op.ADDROF:
        return node.kids[0].op is Op.NAME
    if node.op in (Op.PLUS, Op.MUL):
        return all(_pure_address(kid) for kid in node.kids)
    return False


def _hoist_heavy(
    tree: Node, forest: Forest, limit: int, stats: OrderingStats
) -> List[ForestItem]:
    """Factor subtrees out into temporaries until the statement's register
    need fits the bank.

    The hoisted subtree is the heaviest one that *itself* fits the budget:
    the temp-assignment it becomes then needs at most ``limit`` registers,
    and replacing it by a zero-cost temp leaf strictly lowers the original
    statement's need, so the loop terminates.
    """
    prefix: List[ForestItem] = []
    guard = 0
    while su_number(tree) > limit and guard < 64:
        guard += 1
        heavy = _heaviest_fitting_subtree(tree, limit)
        if heavy is None:
            break
        temp_name = forest.new_temp()
        temp_node = Node(Op.TEMP, heavy.ty, value=temp_name)
        hoisted = heavy.clone()
        heavy.replace_with(temp_node)
        prefix.append(Node(Op.ASSIGN, hoisted.ty, [temp_node.clone(), hoisted]))
        stats.hoisted_temps += 1
    return prefix


def _heaviest_fitting_subtree(tree: Node, limit: int) -> Node:
    """The proper subtree with the largest (su, size) whose su lies in
    [1, limit]: hoisting it relieves the most pressure while the hoisted
    statement stays compilable without spills."""
    best = None
    best_key = (0, 0)
    for node in tree.preorder():
        if node is tree or not node.kids:
            continue
        need = su_number(node)
        if not (1 <= need <= limit):
            continue
        key = (need, node.size())
        if key > best_key:
            best_key = key
            best = node
    return best
