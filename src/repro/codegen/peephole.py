"""A peephole optimizer over the generated assembly.

Section 6.1 sketches the organization the authors were "currently
examining": a simpler code generator paired with "a peephole optimizer
with data flow analysis [Davidson81] [Giegerich82]" that would introduce
the autoincrement and condition-code improvements after the fact.  This
module is that future-work extension: a window-based optimizer over the
emitted assembly, conservative enough to run after either back end.

Rules (each straight out of the classic peephole repertoire):

* ``mov a,b`` immediately followed by ``mov b,a``  →  drop the second;
* ``mov x,x``  →  drop;
* ``jbr L`` when the next line defines ``L``  →  drop;
* ``jCOND L1; jbr L2; L1:``  →  ``j!COND L2; L1:`` (branch inversion);
* ``jbr L1`` where ``L1:`` is immediately followed by ``jbr L2``  →
  ``jbr L2`` (jump chaining);
* ``moval 1(rN),rN`` → ``incl rN`` and ``moval -1(rN),rN`` → ``decl rN``
  (the §6.1 observation that a peephole pass can recover the idioms).

Condition-code safety: a removed ``mov`` also removed its condition-code
side effect, so ``mov b,a`` is only elided when the following
instruction does not *use* the codes (i.e. is not a conditional branch).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_MOV_RE = re.compile(r"^\s*(mov[bwlqfd])\s+([^,]+),(\S+)\s*$")
_BRANCH_RE = re.compile(r"^\s*(j\w+)\s+(\S+)\s*$")
_LABEL_RE = re.compile(r"^(\S+):\s*$")
_MOVAL_INC_RE = re.compile(r"^\s*moval\s+(-?1)\((r\d+|r1[01])\),(\2)\s*$")

#: branch mnemonic inversion table
_INVERT = {
    "jeql": "jneq", "jneq": "jeql",
    "jlss": "jgeq", "jgeq": "jlss",
    "jleq": "jgtr", "jgtr": "jleq",
    "jlssu": "jgequ", "jgequ": "jlssu",
    "jlequ": "jgtru", "jgtru": "jlequ",
}

_CONDITIONALS = frozenset(_INVERT)


@dataclass
class PeepholeStats:
    """What each rule removed/rewrote, for the ablation report."""

    redundant_moves: int = 0
    self_moves: int = 0
    jumps_to_next: int = 0
    branches_inverted: int = 0
    jumps_chained: int = 0
    incs_recovered: int = 0

    @property
    def total(self) -> int:
        return (self.redundant_moves + self.self_moves + self.jumps_to_next
                + self.branches_inverted + self.jumps_chained
                + self.incs_recovered)


def _is_instruction(line: str) -> bool:
    stripped = line.strip()
    return bool(stripped) and not stripped.startswith((".", "#")) \
        and not stripped.endswith(":")


def _label_of(line: str) -> Optional[str]:
    match = _LABEL_RE.match(line.strip())
    return match.group(1) if match else None


def _uses_condition_codes(line: str) -> bool:
    match = _BRANCH_RE.match(line)
    return bool(match) and match.group(1) in _CONDITIONALS


def optimize(lines: List[str]) -> Tuple[List[str], PeepholeStats]:
    """Run the peephole rules to a fixpoint over assembly body lines.

    *lines* are the per-routine body (tab-indented instructions plus
    label definitions); directives pass through untouched.
    """
    stats = PeepholeStats()
    work = list(lines)
    changed = True
    passes = 0
    while changed and passes < 8:
        changed = False
        passes += 1
        work, hit = _one_pass(work, stats)
        changed = changed or hit
    return work, stats


def _one_pass(lines: List[str], stats: PeepholeStats) -> Tuple[List[str], bool]:
    out: List[str] = []
    changed = False
    jump_targets = _jump_chain_map(lines)
    index = 0
    while index < len(lines):
        line = lines[index]
        nxt = lines[index + 1] if index + 1 < len(lines) else ""
        after = lines[index + 2] if index + 2 < len(lines) else ""

        # mov x,x
        mov = _MOV_RE.match(line)
        if mov and mov.group(2).strip() == mov.group(3).strip() \
                and "+" not in line and "-(" not in line:
            stats.self_moves += 1
            changed = True
            index += 1
            continue

        # mov a,b ; mov b,a  (second redundant; keep cc-users safe)
        if mov:
            nxt_mov = _MOV_RE.match(nxt)
            if (
                nxt_mov
                and nxt_mov.group(1) == mov.group(1)
                and nxt_mov.group(2).strip() == mov.group(3).strip()
                and nxt_mov.group(3).strip() == mov.group(2).strip()
                and "+" not in line and "+" not in nxt
                and "-(" not in line and "-(" not in nxt
                and not _uses_condition_codes(after)
            ):
                out.append(line)
                stats.redundant_moves += 1
                changed = True
                index += 2
                continue

        # moval +/-1(rN),rN -> incl/decl rN
        inc = _MOVAL_INC_RE.match(line)
        if inc:
            mnemonic = "incl" if inc.group(1) == "1" else "decl"
            out.append(f"\t{mnemonic} {inc.group(2)}")
            stats.incs_recovered += 1
            changed = True
            index += 1
            continue

        branch = _BRANCH_RE.match(line)
        if branch:
            mnemonic, target = branch.groups()

            # jbr L ; L:
            if mnemonic == "jbr" and _label_of(nxt) == target:
                stats.jumps_to_next += 1
                changed = True
                index += 1
                continue

            # jCOND L1 ; jbr L2 ; L1:   ->   j!COND L2 ; L1:
            nxt_branch = _BRANCH_RE.match(nxt)
            if (
                mnemonic in _INVERT
                and nxt_branch and nxt_branch.group(1) == "jbr"
                and _label_of(after) == target
            ):
                out.append(f"\t{_INVERT[mnemonic]} {nxt_branch.group(2)}")
                stats.branches_inverted += 1
                changed = True
                index += 2
                continue

            # jump chaining: jbr L1 where L1: jbr L2
            chained = jump_targets.get(target)
            if mnemonic == "jbr" and chained and chained != target:
                out.append(f"\tjbr {chained}")
                stats.jumps_chained += 1
                changed = True
                index += 1
                continue

        out.append(line)
        index += 1
    return out, changed


def _jump_chain_map(lines: List[str]) -> Dict[str, str]:
    """label -> ultimate target, for labels whose first instruction is a
    jbr (bounded to break cycles)."""
    first_jump: Dict[str, str] = {}
    pending: List[str] = []
    for line in lines:
        label = _label_of(line)
        if label is not None:
            pending.append(label)
            continue
        if not _is_instruction(line):
            continue
        branch = _BRANCH_RE.match(line)
        if branch and branch.group(1) == "jbr":
            for label in pending:
                first_jump[label] = branch.group(2)
        pending = []

    resolved: Dict[str, str] = {}
    for label in first_jump:
        target = first_jump[label]
        for _ in range(8):  # bound cycles
            if target not in first_jump or first_jump[target] == target:
                break
            target = first_jump[target]
        if target != label:
            resolved[label] = target
    return resolved


def optimize_unit(body_lines: List[str]) -> Tuple[List[str], PeepholeStats]:
    """Optimize an AssemblyUnit body in place-compatible form."""
    return optimize(body_lines)
