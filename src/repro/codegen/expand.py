"""Phase 1b: operator expansion and commutative canonicalization
(section 5.1.2).

* operators with no hardware twin are expanded (left shift by a constant
  becomes multiplication by the power of two — which the displacement-
  indexed addressing hardware then absorbs for free);
* subtraction of a constant becomes addition of its negation;
* a constant operand of a commutative operator is forced to be the *left*
  child, which is the shape every addressing-phrase pattern expects;
* constant folding (the paper assumes the front ends fold; ours verifies);
* narrowing and int/float-mixing assignments get explicit ``Conv``
  operators, since the grammar only widens implicitly;
* value-less ``Expr`` statements are dropped.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.ops import Op, OpClass
from ..ir.tree import Forest, ForestItem, LabelDef, Node, walk_postorder
from ..ir.types import MachineType

_FOLDABLE = {
    Op.PLUS: lambda a, b: a + b,
    Op.MINUS: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.LSH: lambda a, b: a << b,
}

#: operators whose value may be discarded only if their subtree is pure
_SIDE_EFFECT_OPS = frozenset({
    Op.CALL, Op.ASSIGN, Op.RASSIGN, Op.POSTINC, Op.POSTDEC,
    Op.PREINC, Op.PREDEC,
})


def has_side_effects(node: Node) -> bool:
    return any(n.op in _SIDE_EFFECT_OPS for n in node.preorder())


def expand_operators(forest: Forest) -> Forest:
    """Run phase 1b over a forest (in place rewrites; returns the forest)."""
    kept: List[ForestItem] = []
    for item in forest.items:
        if isinstance(item, LabelDef):
            kept.append(item)
            continue
        _rewrite_tree(item)
        if item.op is Op.EXPR and not has_side_effects(item.kids[0]):
            continue  # evaluate-for-effect with no effects: drop
        kept.append(item)
    forest.items[:] = kept
    return forest


def _rewrite_tree(tree: Node) -> None:
    for node in list(walk_postorder(tree)):
        _fold_constants(node)
        _expand_shift(node)
        _expand_unsigned_rsh(node)
        _sub_const_to_add(node)
        _constant_left(node)
        _insert_conversions(node)
        _fold_conv_const(node)


def _fold_conv_const(node: Node) -> None:
    """Conv of an integer constant folds at compile time — the assembler
    extends/truncates immediates; no cvt instruction is needed."""
    if node.op is not Op.CONV or not node.kids:
        return
    kid = node.kids[0]
    if kid.op is Op.CONST and node.ty.is_integer and isinstance(kid.value, int):
        node.replace_with(Node(Op.CONST, node.ty, value=node.ty.wrap(kid.value)))
    elif kid.op is Op.CONST and node.ty.is_float and isinstance(kid.value, (int, float)):
        node.replace_with(Node(Op.CONST, node.ty, value=float(kid.value)))


def _const_value(node: Node) -> Optional[int]:
    if node.op is Op.CONST and isinstance(node.value, int):
        return node.value
    return None


def _fold_constants(node: Node) -> None:
    folder = _FOLDABLE.get(node.op)
    if folder is None or len(node.kids) != 2:
        return
    left = _const_value(node.kids[0])
    right = _const_value(node.kids[1])
    if left is None or right is None:
        return
    value = folder(left, right)
    if node.ty.is_integer:
        value = node.ty.wrap(value)
    node.replace_with(Node(Op.CONST, node.ty, value=value))


def _expand_shift(node: Node) -> None:
    """Left shift by a constant becomes multiplication by 2**c, so the
    pattern matcher can fold it into scaled-index addressing."""
    if node.op is not Op.LSH:
        return
    count = _const_value(node.kids[1])
    if count is None or not (0 <= count < 8 * node.ty.size):
        return
    power = Node(Op.CONST, node.ty, value=1 << count)
    node.replace_with(Node(Op.MUL, node.ty, [power, node.kids[0]]))


def _expand_unsigned_rsh(node: Node) -> None:
    """C's ``>>`` on an unsigned operand is a *logical* shift, but the
    VAX's only shifter (``ashl``) is arithmetic.  For a constant count,
    shift and then mask off the ``count`` replicated sign bits:
    ``x >> c  ==>  ((1 << (bits - c)) - 1) & (x >> c)``.  The inner
    shift may replicate the sign bit freely — the mask clears exactly
    those positions.  (Sub-int unsigned operands don't get here: the
    integer promotions make them signed int first, and their
    zero-extended values shift arithmetically without error.)"""
    if node.op not in (Op.RSH, Op.RRSH) or not node.ty.is_integer \
            or node.ty.signed:
        return
    value, count_kid = (node.kids if node.op is Op.RSH
                        else reversed(node.kids))
    count = _const_value(count_kid)
    bits = 8 * node.ty.size
    if count is None or not (0 < count < bits):
        if count == 0:
            node.replace_with(value)
        return
    shifted = Node(node.op, node.ty, list(node.kids))
    mask = Node(Op.CONST, node.ty, value=(1 << (bits - count)) - 1)
    node.replace_with(Node(Op.AND, node.ty, [mask, shifted]))


def _sub_const_to_add(node: Node) -> None:
    """x - c  ==>  (-c) + x."""
    if node.op is not Op.MINUS or not node.ty.is_integer:
        return
    value = _const_value(node.kids[1])
    if value is None:
        return
    negated = Node(Op.CONST, node.ty, value=node.ty.wrap(-value))
    node.replace_with(Node(Op.PLUS, node.ty, [negated, node.kids[0]]))


def _constant_left(node: Node) -> None:
    """Commutative operators put their constant operand on the left."""
    if not node.op.commutative or len(node.kids) != 2:
        return
    left, right = node.kids
    if right.op is Op.CONST and left.op is not Op.CONST:
        node.kids = [right, left]


def _coerce(kid: Node, target: MachineType) -> Node:
    """Wrap *kid* in a Conv to *target* — except constants, which simply
    retype (the assembler truncates/extends immediates for free)."""
    if kid.op is Op.CONST and target.is_integer and isinstance(kid.value, int):
        return Node(Op.CONST, target, value=target.wrap(kid.value))
    if kid.op is Op.CONST and target.is_float and isinstance(kid.value, (int, float)):
        return Node(Op.CONST, target, value=float(kid.value))
    return Node(Op.CONV, target, [kid])


def _insert_conversions(node: Node) -> None:
    """Make narrowing (and int<->float) conversions explicit: the grammar
    widens implicitly but narrows only through Conv (section 6.4)."""
    if node.op in (Op.ASSIGN,):
        dest, src = node.kids
        if _needs_conv(src.ty, dest.ty):
            node.kids[1] = _coerce(src, dest.ty)
        return
    if node.op.klass is OpClass.BINARY and node.op not in (
        Op.ASSIGN, Op.RASSIGN, Op.CMP, Op.RCMP,
        Op.LSH, Op.RSH, Op.RLSH, Op.RRSH,
        Op.POSTINC, Op.POSTDEC, Op.PREINC, Op.PREDEC,
    ):
        for index, kid in enumerate(node.kids):
            if _needs_conv(kid.ty, node.ty):
                node.kids[index] = _coerce(kid, node.ty)
        return
    if node.op in (Op.CMP, Op.RCMP):
        target = node.ty
        for index, kid in enumerate(node.kids):
            if _needs_conv(kid.ty, target):
                node.kids[index] = _coerce(kid, target)


def _needs_conv(src: MachineType, dst: MachineType) -> bool:
    """Widening same-kind conversions are implicit in the grammar; any
    narrowing or kind change requires an explicit Conv node.  Constants
    never need one (the assembler extends immediates)."""
    if src.kind is not dst.kind:
        return True
    if src.size > dst.size:
        return True
    return False
