"""Phase 1a: explicit control flow (section 5.1.1).

Rewrites performed here, in the paper's order:

* short-circuit ``&&``/``||`` (and ``!``) become explicit tests and
  conditional branches;
* function calls nested in expressions are factored out: argument pushes
  and the call become statement trees, the call site is replaced by a
  compiler temporary;
* selection operators (``?:``) become conditional branches assigning into
  a phase-1 register;
* truth values (a comparison used for its value) become the test/jump/
  assign sequence the VAX requires, also into a phase-1 register.

The last two need a register manager "totally disjoint from the register
manager in the third phase"; phase 1 takes registers from the *top* of the
allocatable bank and announces each with a ``Reghint`` tree carrying a use
count, which the phase-3 manager honours (section 5.3.3).
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.builder import cmp as build_cmp
from ..ir.ops import Cond, Op, OpClass
from ..ir.tree import Forest, ForestItem, LabelDef, Node
from ..ir.types import MachineType
from ..targets.base import Machine
from ..targets.registry import resolve_target


def _resolve_machine(machine: Optional[Machine]) -> Machine:
    """``None`` means "the configured target's machine" (honouring
    ``$REPRO_TARGET``), never a hard-wired default."""
    if machine is not None:
        return machine
    return resolve_target(None).machine

_BOOL_OPS = frozenset({Op.ANDAND, Op.OROR, Op.NOT, Op.CMP})


class Phase1RegisterPool:
    """The disjoint phase-1 register allocator: registers come off the top
    of the allocatable bank so phase 3's bottom-up allocation rarely
    collides before the Reghint arrives.

    The paper notes this split "needs to be reevaluated" (section 5.1.1):
    a statement with many truth values would pin the whole bank.  We cap
    phase 1 at half the bank and overflow into compiler temporaries —
    ``take`` then returns None and the rewriter materializes the value in
    memory instead.
    """

    def __init__(self, machine: Optional[Machine] = None, limit: int = 3) -> None:
        machine = _resolve_machine(machine)
        self._bank = list(reversed(machine.allocatable))[:limit]
        self._next = 0

    def take(self) -> Optional[str]:
        if self._next >= len(self._bank):
            return None
        register = self._bank[self._next]
        self._next += 1
        return register

    def reset(self) -> None:
        self._next = 0


class ControlFlowRewriter:
    """Applies the 1a rewrites to one forest, producing a new item list."""

    def __init__(self, forest: Forest, machine: Optional[Machine] = None) -> None:
        self.forest = forest
        self.machine = _resolve_machine(machine)
        self.pool = Phase1RegisterPool(self.machine)
        self.out: List[ForestItem] = []

    # ------------------------------------------------------------- driver
    def run(self) -> Forest:
        items: List[ForestItem] = []
        for item in self.forest.items:
            self.out = []
            if isinstance(item, LabelDef):
                self.out.append(item)
            else:
                self.pool.reset()
                self._statement(item)
            items.extend(self.out)
        result = Forest(items, name=self.forest.name)
        # the source forest's counters advanced as we invented temps/labels
        result._next_temp = self.forest._next_temp
        result._next_label = self.forest._next_label
        return result

    def _new_temp(self) -> str:
        return self.forest.new_temp()

    def _new_label(self) -> str:
        return self.forest.new_label()

    # --------------------------------------------------------- statements
    def _statement(self, tree: Node) -> None:
        if tree.op is Op.CBRANCH:
            test, target = tree.kids
            self._branch_true(test, str(target.value))
            return
        if tree.op is Op.EXPR:
            inner = tree.kids[0]
            if inner.op is Op.CALL:
                self._flatten_call(inner, dest=None)
                return
            if inner.op in (Op.POSTINC, Op.PREINC):
                self._emit_inc(inner, positive=True)
                return
            if inner.op in (Op.POSTDEC, Op.PREDEC):
                self._emit_inc(inner, positive=False)
                return
            if inner.op in (Op.ASSIGN, Op.RASSIGN):
                self._statement(inner)
                return
            tree.kids[0] = self._expression(inner)
            self.out.append(tree)
            return
        if tree.op is Op.ASSIGN and tree.kids[1].op is Op.CALL:
            dest = self._expression(tree.kids[0])
            self._flatten_call(tree.kids[1], dest=dest, dest_ty=tree.ty)
            return
        for index, kid in enumerate(tree.kids):
            tree.kids[index] = self._expression(kid)
        self.out.append(tree)

    # -------------------------------------------------------- expressions
    def _expression(self, node: Node) -> Node:
        """Rewrite control flow out of an expression tree.

        Control operators are handled *before* their children so a
        boolean network under a selector becomes one branch tree rather
        than a cascade of materialized truth values; each handler recurses
        into the operand positions it keeps.
        """
        if node.op is Op.SELECT:
            return self._select_to_register(node)
        if node.op in (Op.ANDAND, Op.OROR, Op.NOT):
            return self._truth_value(node)
        if node.op is Op.CMP:
            # A comparison here is a *value* use (branch tests were peeled
            # off in _statement): build the truth value.
            return self._truth_value(node)

        if node.op is Op.INDIR:
            inner = node.kids[0]
            # Only a machine with autoincrement hardware may leave the
            # tree intact; on a load/store target the increment becomes
            # explicit statements like any other.
            if (
                self.machine.has_autoincrement
                and self._autoinc_eligible(inner, node.ty)
            ):
                return node  # the autoincrement addressing mode covers it
            node.kids[0] = self._expression(inner)
            return node

        for index, kid in enumerate(node.kids):
            node.kids[index] = self._expression(kid)

        if node.op is Op.CALL:
            return self._call_to_temp(node)
        if node.op in (Op.POSTINC, Op.POSTDEC, Op.PREINC, Op.PREDEC):
            return self._inc_value(node)
        return node

    @staticmethod
    def _autoinc_eligible(inner: Node, access_ty: MachineType) -> bool:
        """Does ``Indir(inner)`` match the grammar's autoincrement /
        autodecrement patterns?  Dedicated-register pointer, post-increment
        or pre-decrement, step equal to the datum size (section 6.1)."""
        if inner.op not in (Op.POSTINC, Op.PREDEC):
            return False
        if inner.kids[0].op is not Op.DREG:
            return False
        amount = inner.kids[1]
        return amount.op is Op.CONST and amount.value == access_ty.size

    # ----------------------------------------------------------- branches
    def _branch_true(self, test: Node, target: str) -> None:
        """Emit branches so control reaches *target* iff *test* is true."""
        test = self._peel(test)
        if test.op is Op.ANDAND:
            fall = self._new_label()
            self._branch_false(test.kids[0], fall)
            self._branch_true(test.kids[1], target)
            self.out.append(LabelDef(fall))
        elif test.op is Op.OROR:
            self._branch_true(test.kids[0], target)
            self._branch_true(test.kids[1], target)
        elif test.op is Op.NOT:
            self._branch_false(test.kids[0], target)
        else:
            cmp_tree = self._as_comparison(test)
            self.out.append(
                Node(Op.CBRANCH, MachineType.LONG,
                     [cmp_tree, Node(Op.LABEL, MachineType.LONG, value=target)])
            )

    def _branch_false(self, test: Node, target: str) -> None:
        test = self._peel(test)
        if test.op is Op.ANDAND:
            self._branch_false(test.kids[0], target)
            self._branch_false(test.kids[1], target)
        elif test.op is Op.OROR:
            fall = self._new_label()
            self._branch_true(test.kids[0], fall)
            self._branch_false(test.kids[1], target)
            self.out.append(LabelDef(fall))
        elif test.op is Op.NOT:
            self._branch_true(test.kids[0], target)
        else:
            cmp_tree = self._as_comparison(test)
            negated = Node(Op.CMP, cmp_tree.ty, cmp_tree.kids,
                           cond=(cmp_tree.cond or Cond.NE).negated)
            self.out.append(
                Node(Op.CBRANCH, MachineType.LONG,
                     [negated, Node(Op.LABEL, MachineType.LONG, value=target)])
            )

    def _peel(self, test: Node) -> Node:
        """Strip no-op wrappers around a test."""
        while test.op is Op.CONV and test.kids:
            test = test.kids[0]
        return test

    def _as_comparison(self, test: Node) -> Node:
        if test.op is Op.CMP:
            for index, kid in enumerate(test.kids):
                test.kids[index] = self._expression(kid)
            return test
        value = self._expression(test)
        zero = Node(Op.CONST, value.ty, value=0)
        return build_cmp(Cond.NE, value, zero)

    # --------------------------------------------------------- truth value
    def _value_cell(self, ty: MachineType) -> Node:
        """A place for a phase-1-computed value: one of the reserved
        registers (announced with Reghint), or a compiler temporary once
        the pool runs dry."""
        register = self.pool.take()
        if register is None:
            return Node(Op.TEMP, ty, value=self._new_temp())
        self.out.append(
            Node(Op.REGHINT, MachineType.LONG,
                 [Node(Op.REG, MachineType.LONG, value=register)], value=3)
        )
        return Node(Op.REG, ty, value=register)

    def _truth_value(self, node: Node) -> Node:
        """section 5.1.1: "a truth value ... must be constructed by a
        sequence of tests, jumps and assignments"."""
        reg_node = self._value_cell(MachineType.LONG)
        true_label = self._new_label()
        end_label = self._new_label()
        self._branch_true(node, true_label)
        self.out.append(
            Node(Op.ASSIGN, MachineType.LONG,
                 [reg_node.clone(), Node(Op.CONST, MachineType.LONG, value=0)])
        )
        self.out.append(
            Node(Op.JUMP, MachineType.LONG,
                 [Node(Op.LABEL, MachineType.LONG, value=end_label)])
        )
        self.out.append(LabelDef(true_label))
        self.out.append(
            Node(Op.ASSIGN, MachineType.LONG,
                 [reg_node.clone(), Node(Op.CONST, MachineType.LONG, value=1)])
        )
        self.out.append(LabelDef(end_label))
        return reg_node.clone()

    # ------------------------------------------------------------- select
    def _select_to_register(self, node: Node) -> Node:
        """``cond ? a : b`` into explicit branches (section 5.1.1)."""
        cond_tree, then_tree, else_tree = node.kids
        then_tree = self._expression(then_tree)
        else_tree = self._expression(else_tree)
        ty = node.ty
        reg_node = self._value_cell(ty)
        else_label = self._new_label()
        end_label = self._new_label()
        self._branch_false(cond_tree, else_label)
        self.out.append(Node(Op.ASSIGN, ty, [reg_node.clone(), then_tree]))
        self.out.append(
            Node(Op.JUMP, MachineType.LONG,
                 [Node(Op.LABEL, MachineType.LONG, value=end_label)])
        )
        self.out.append(LabelDef(else_label))
        self.out.append(Node(Op.ASSIGN, ty, [reg_node.clone(), else_tree]))
        self.out.append(LabelDef(end_label))
        return reg_node.clone()

    # --------------------------------------------------------------- calls
    def _call_to_temp(self, node: Node) -> Node:
        """Replace a nested call by a compiler temporary, preceded by the
        argument pushes and the call-assign statement."""
        temp_name = self._new_temp()
        dest = Node(Op.TEMP, node.ty, value=temp_name)
        self._flatten_call(node, dest=dest.clone(), dest_ty=node.ty)
        return dest

    def _flatten_call(
        self,
        call: Node,
        dest: Optional[Node],
        dest_ty: Optional[MachineType] = None,
    ) -> None:
        """Emit Arg statements (rightmost pushed first, per the C calling
        convention) and the call statement itself."""
        args = [self._expression(arg) for arg in call.kids]
        argc = len(args)
        for arg in reversed(args):
            if arg.ty.is_float:
                self.out.append(Node(Op.ARG, arg.ty, [arg]))
            else:
                widened = arg
                if arg.ty.size < 4:
                    widened = Node(Op.CONV, MachineType.LONG, [arg])
                self.out.append(Node(Op.ARG, MachineType.LONG, [widened]))
        argc_node = Node(Op.CONST, MachineType.LONG, value=argc)
        bare = Node(Op.CALL, call.ty, [argc_node], value=call.value)
        if dest is None:
            self.out.append(bare)
            return
        ty = dest_ty or call.ty
        if not self.machine.safe_call_destination(dest):
            # The destination's address would be materialised into an
            # allocatable register *before* the call — which the callee
            # is free to clobber.  Stage the result through a value
            # cell so the address computation runs after the call.
            cell = self._value_cell(ty)
            self.out.append(Node(Op.ASSIGN, ty, [cell.clone(), bare]))
            self.out.append(Node(Op.ASSIGN, ty, [dest, cell.clone()]))
            return
        self.out.append(Node(Op.ASSIGN, ty, [dest, bare]))

    # ----------------------------------------------------- inc/dec values
    def _is_autoinc_context(self, node: Node) -> bool:
        """Would the grammar's autoincrement mode cover this?  Only a
        dedicated-register pointer under Indir qualifies (section 6.1),
        and that shape is left intact by the *parent's* rewrite."""
        return node.kids[0].op is Op.DREG

    def _emit_inc(self, node: Node, positive: bool) -> None:
        """A statement-level ``x++``: plain add/sub assignment, which the
        binding+range idioms turn into inc/dec instructions."""
        lvalue, amount = node.kids
        lvalue = self._expression(lvalue)
        op = Op.PLUS if positive else Op.MINUS
        self.out.append(
            Node(Op.ASSIGN, lvalue.ty,
                 [lvalue, Node(op, lvalue.ty, [lvalue.clone(), amount])])
        )

    def _inc_value(self, node: Node) -> Node:
        """An increment used as a value.  Dedicated-register post-forms in
        an Indir context stay put for the autoincrement addressing mode;
        everything else becomes explicit statements plus a temporary."""
        lvalue, amount = node.kids
        positive = node.op in (Op.POSTINC, Op.PREINC)
        post = node.op in (Op.POSTINC, Op.POSTDEC)
        arith_op = Op.PLUS if positive else Op.MINUS
        if post:
            temp_name = self._new_temp()
            temp_node = Node(Op.TEMP, lvalue.ty, value=temp_name)
            self.out.append(
                Node(Op.ASSIGN, lvalue.ty, [temp_node.clone(), lvalue.clone()])
            )
            self.out.append(
                Node(Op.ASSIGN, lvalue.ty,
                     [lvalue.clone(),
                      Node(arith_op, lvalue.ty, [lvalue.clone(), amount])])
            )
            return temp_node
        self.out.append(
            Node(Op.ASSIGN, lvalue.ty,
                 [lvalue.clone(),
                  Node(arith_op, lvalue.ty, [lvalue.clone(), amount])])
        )
        return lvalue.clone()


def make_control_flow_explicit(
    forest: Forest, machine: Optional[Machine] = None
) -> Forest:
    """Run phase 1a over a forest, returning the rewritten forest."""
    return ControlFlowRewriter(forest, machine).run()
