"""The code generator driver — Figure 2's phase pipeline.

One :class:`GrahamGlanvilleCodeGenerator` owns the constructed parse
tables (built once per target, reused across compilations, exactly like
the static/dynamic split of section 3) and runs, per routine:

  phase 1a  explicit control flow        (controlflow)
  phase 1b  operator expansion           (expand)
  phase 1c  evaluation ordering          (ordering)
  phase 2   pattern matching             (repro.matcher + tables)
  phase 3   instruction generation       (the target's semantics)
  phase 4   output formatting            (output)

Per-phase wall-clock is recorded so experiment F2 can reproduce the
"roughly one half the code generation time is spent in the pattern
matching phase" observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..grammar.production import Production
from ..ir.linearize import Token
from ..ir.ops import Op
from ..ir.tree import Forest, LabelDef, Node
from ..matcher.descriptors import Descriptor
from ..matcher.engine import (
    Matcher, MatchResult, SemanticActions, resolve_engine,
)
from ..matcher.trace import Tracer
from ..obs.metrics import REGISTRY as METRICS
from ..obs.spans import span
from ..tables.cache import CacheOutcome, cached_build, table_cache_key
from ..tables.slr import ParseTables, construct_tables
from ..targets.base import Target
from ..targets.grammar import GrammarBundle
from ..targets.registry import resolve_target
from ..targets.semantics import CodeBuffer
from .controlflow import make_control_flow_explicit
from .expand import expand_operators
from .ordering import OrderingStats, order_for_evaluation
from .output import AssemblyUnit


@dataclass
class PhaseTimes:
    """Seconds spent per logical phase across one compilation.

    ``matching`` is *exclusive* parse time: the per-statement wall time
    of the shift/reduce loop minus the semantic-callback time charged to
    ``semantics`` while that statement matched.  The attribution is
    structural (each phase's clock only runs while that phase runs), so
    no phase can go negative and no clamping is needed.  ``wall`` is the
    whole compilation's wall time; the gap ``wall - total`` is honest
    unattributed overhead (temp-slot assignment, statement boundaries,
    timer reads) rather than time silently folded into a phase.
    """

    transform: float = 0.0
    matching: float = 0.0   # parse actions: shifts/reduces/table lookups
    semantics: float = 0.0  # instruction generation inside reductions
    output: float = 0.0
    wall: float = 0.0       # whole-compilation wall clock (>= total)

    @property
    def total(self) -> float:
        return self.transform + self.matching + self.semantics + self.output

    @property
    def unattributed(self) -> float:
        return self.wall - self.total

    @property
    def matching_fraction(self) -> float:
        total = self.total
        return self.matching / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "transform": self.transform,
            "matching": self.matching,
            "semantics": self.semantics,
            "output": self.output,
            "total": self.total,
            "wall": self.wall,
        }


@dataclass
class CompileResult:
    """Everything produced by compiling one routine."""

    unit: AssemblyUnit
    times: PhaseTimes
    ordering: OrderingStats
    shifts: int = 0
    reductions: int = 0
    chain_reductions: int = 0
    statements: int = 0

    @property
    def assembly(self) -> str:
        return self.unit.text()

    @property
    def instruction_count(self) -> int:
        return self.unit.instruction_count


class _TimedSemantics(SemanticActions):
    """Delegating wrapper that charges semantic time separately from
    parse time, for the F2/E8 phase-profile experiments."""

    def __init__(self, inner: SemanticActions, times: PhaseTimes) -> None:
        self.inner = inner
        self.times = times

    def on_shift(self, token: Token) -> Descriptor:
        started = time.perf_counter()
        try:
            return self.inner.on_shift(token)
        finally:
            self.times.semantics += time.perf_counter() - started

    def on_reduce(self, production: Production, kids: Sequence[Descriptor]):
        started = time.perf_counter()
        try:
            return self.inner.on_reduce(production, kids)
        finally:
            self.times.semantics += time.perf_counter() - started

    def choose(self, productions, kids):
        started = time.perf_counter()
        try:
            return self.inner.choose(productions, kids)
        finally:
            self.times.semantics += time.perf_counter() - started


class GrahamGlanvilleCodeGenerator:
    """The replacement second pass: table-driven instruction selection.

    The static phase (grammar build + SLR construction) is paid once per
    *description*, not once per process: unless a ``bundle``/``tables``
    pair is handed in, the constructor consults the persistent table
    cache (:mod:`repro.tables.cache`) keyed on the exact grammar text and
    options, warm-starting in milliseconds when the description is
    unchanged.  ``cache=False`` forces a fresh build; ``cache_dir``
    redirects the store (tests use a tmp dir).  ``engine`` selects the
    matcher's drive loop (``"compiled"``, ``"packed"`` — the default —
    or the original ``"dict"`` loop for differential runs); the legacy
    ``use_packed`` boolean and ``$REPRO_MATCHER`` are honoured through
    :func:`repro.matcher.engine.resolve_engine`.

    ``target`` names the machine description to drive the tables with: a
    registered target name (``"vax"``, ``"r32"``), a
    :class:`~repro.targets.base.Target` instance, or ``None`` to honour
    ``$REPRO_TARGET`` and fall back to the registry default.  The target
    is resolved exactly once, here — nothing downstream assumes a
    machine.
    """

    def __init__(
        self,
        target: Optional[object] = None,
        reversed_ops: bool = True,
        overfactoring_fix: bool = True,
        peephole: bool = False,
        bundle: Optional[GrammarBundle] = None,
        tables: Optional[ParseTables] = None,
        use_packed: Optional[bool] = None,
        cache: Optional[bool] = None,
        cache_dir: Optional[str] = None,
        rescue_bridges: bool = True,
        engine: Optional[str] = None,
    ) -> None:
        self.target: Target = resolve_target(target)
        self.machine = self.target.machine
        self.reversed_ops = reversed_ops
        self.peephole = peephole
        self.engine = resolve_engine(engine, use_packed)
        self.use_packed = self.engine != "dict"
        self.rescue_bridges = rescue_bridges
        self.cache_outcome: Optional[CacheOutcome] = None

        static_started = time.perf_counter()
        with span("static.tables", cat="static"):
            if bundle is not None or tables is not None:
                self.bundle = bundle or self.target.build_grammar(
                    reversed_ops=reversed_ops,
                    overfactoring_fix=overfactoring_fix,
                    rescue_bridges=rescue_bridges,
                )
                self.tables = tables or construct_tables(self.bundle.grammar)
                self.table_source = (
                    "provided" if tables is not None else "built"
                )
            else:
                text = self.target.grammar_text(
                    reversed_ops, overfactoring_fix, rescue_bridges
                )
                # The target name is an explicit key component: two
                # machine descriptions must never alias in the table
                # store even if their texts somehow collide.
                key = table_cache_key(
                    text,
                    target=self.target.name,
                    reversed_ops=reversed_ops,
                    overfactoring_fix=overfactoring_fix,
                    rescue_bridges=rescue_bridges,
                )

                def build():
                    built = self.target.build_grammar(
                        reversed_ops=reversed_ops,
                        overfactoring_fix=overfactoring_fix,
                        rescue_bridges=rescue_bridges,
                    )
                    constructed = construct_tables(built.grammar)
                    constructed.packed()  # cache the packed form alongside
                    return built, constructed

                (self.bundle, self.tables), outcome = cached_build(
                    key, build, directory=cache_dir, enabled=cache
                )
                self.cache_outcome = outcome
                self.table_source = "cache" if outcome.hit else "built"
            if self.use_packed:
                # Expand the dense runtime rows now so the first compile's
                # matching time measures matching, not table expansion.
                with span("packed.expand", cat="static"):
                    self.tables.packed().runtime()
            if self.engine == "compiled":
                # Generate (or cache-load) the compiled matcher up front
                # for the same reason; a failure memoizes the packed
                # fallback here rather than on the first match.
                from ..tables.compiled import compiled_matcher_for

                with span("matchgen.prepare", cat="static"):
                    compiled_matcher_for(
                        self.tables, cache=cache, cache_dir=cache_dir
                    )
        self.static_seconds = time.perf_counter() - static_started
        METRICS.observe("static.seconds", self.static_seconds)
        METRICS.inc(f"static.tables.{self.table_source}")

    # ------------------------------------------------------------ pipeline
    def transform(self, forest: Forest) -> Tuple[Forest, OrderingStats]:
        """Phases 1a-1c on a (copy of a) forest."""
        work = forest.clone()
        with span("phase.controlflow", cat="phase", function=forest.name):
            work = make_control_flow_explicit(work, self.machine)
        with span("phase.expand", cat="phase", function=forest.name):
            work = expand_operators(work)
        with span("phase.ordering", cat="phase", function=forest.name):
            stats = order_for_evaluation(
                work, self.machine, enable_reversed=self.reversed_ops
            )
        return work, stats

    def compile(
        self,
        forest: Forest,
        trace: Optional[Tracer] = None,
        use_packed: Optional[bool] = None,
        engine: Optional[str] = None,
    ) -> CompileResult:
        """Compile one routine to the target's assembly."""
        with span("compile", cat="function", function=forest.name):
            started = time.perf_counter()
            work, ordering_stats = self.transform(forest)
            transform_seconds = time.perf_counter() - started
            result = self.generate(
                work, ordering_stats, name=forest.name,
                trace=trace, use_packed=use_packed, engine=engine,
            )
        result.times.transform += transform_seconds
        result.times.wall += transform_seconds
        return result

    def generate(
        self,
        work: Forest,
        ordering_stats: OrderingStats,
        name: str,
        trace: Optional[Tracer] = None,
        use_packed: Optional[bool] = None,
        engine: Optional[str] = None,
    ) -> CompileResult:
        """Phases 2-4 on an already-transformed forest.

        Split out of :meth:`compile` so the recovery ladder can mutate the
        transformed forest (operand hoisting) and regenerate with fresh
        buffers, and so a blocked function can be retried on a slower
        engine (``engine="packed"`` or ``"dict"``) without rebuilding the
        generator.
        """
        times = PhaseTimes()
        if engine is None:
            engine = (
                self.engine if use_packed is None
                else ("packed" if use_packed else "dict")
            )
        wall_started = time.perf_counter()

        # Compiler temporaries (call results, hoisted subtrees, spill
        # slots) live in the frame, as PCC's did — statics would break
        # under recursion.  Map each temp name to an fp displacement.
        assign_temp_slots(work)
        spills = _SpillSlotAllocator()

        unit = AssemblyUnit(name=name)
        buffer = CodeBuffer(lines=unit.body_lines)
        semantics = self.target.make_semantics(
            self.machine, buffer=buffer, new_temp=spills.take
        )
        timed = _TimedSemantics(semantics, times)
        matcher = Matcher(self.tables, timed, engine=engine)

        shifts = reductions = chains = statements = 0
        with span("phase.matching", cat="phase", function=name) as match_span:
            for item in work.items:
                if isinstance(item, LabelDef):
                    buffer.label(item.name)
                    continue
                # Exclusive attribution: semantic-callback time lands in
                # ``times.semantics`` as it happens (_TimedSemantics);
                # matching gets the remainder of this statement's wall
                # time.  Each phase's clock only runs while that phase
                # runs, so neither can go negative — no clamp.
                semantics_before = times.semantics
                started = time.perf_counter()
                with span("match.statement", cat="statement",
                          function=name, index=statements):
                    result = matcher.match_tree(item, trace)
                statement_wall = time.perf_counter() - started
                times.matching += (
                    statement_wall - (times.semantics - semantics_before)
                )
                semantics.statement_boundary()
                statements += 1
                shifts += item.size()
                reductions += len(result.reductions)
                chains += result.chain_reductions
            match_span.note(
                statements=statements, shifts=shifts, reductions=reductions,
                matching_seconds=round(times.matching, 6),
                semantics_seconds=round(times.semantics, 6),
            )

        started = time.perf_counter()
        with span("phase.output", cat="phase", function=name):
            if self.peephole:
                from .peephole import optimize

                optimized, _ = optimize(unit.body_lines)
                unit.body_lines[:] = optimized
            text = unit.text()  # force formatting for timing purposes
        times.output = time.perf_counter() - started
        times.wall = time.perf_counter() - wall_started

        if METRICS.enabled:
            METRICS.inc("compile.functions")
            METRICS.inc("compile.statements", statements)
            METRICS.inc("matcher.shifts", shifts)
            METRICS.inc("matcher.reductions", reductions)
            METRICS.inc("matcher.chain_reductions", chains)
            METRICS.observe("compile.fn_seconds", times.wall)
            METRICS.observe("compile.matching_seconds", times.matching)
            METRICS.observe("compile.semantics_seconds", times.semantics)

        return CompileResult(
            unit=unit, times=times, ordering=ordering_stats,
            shifts=shifts, reductions=reductions,
            chain_reductions=chains, statements=statements,
        )

#: Frame offsets below the front end's locals, reserved for compiler
#: temporaries and spill slots (the simulator reserves 4 KiB per frame).
TEMP_AREA_BASE = -2048
SPILL_AREA_BASE = -3584


def assign_temp_slots(forest: Forest, base: int = TEMP_AREA_BASE) -> Dict[str, str]:
    """Rewrite every ``Temp`` leaf's name to its frame slot ``off(fp)``."""
    slots: Dict[str, str] = {}
    offset = base
    for tree in forest.trees():
        for node in tree.preorder():
            if node.op is not Op.TEMP or not isinstance(node.value, str):
                continue
            if node.value.endswith("(fp)"):
                continue  # already assigned
            if node.value not in slots:
                offset -= max(4, node.ty.size)
                slots[node.value] = f"{offset}(fp)"
            node.value = slots[node.value]
    return slots


class _SpillSlotAllocator:
    """Frame slots for register spills ("virtual registers")."""

    def __init__(self, base: int = SPILL_AREA_BASE) -> None:
        self._next = base

    def take(self) -> str:
        self._next -= 4
        return f"{self._next}(fp)"


def compile_forest(forest: Forest, **options) -> CompileResult:
    """One-shot convenience: build a generator and compile *forest*."""
    return GrahamGlanvilleCodeGenerator(**options).compile(forest)
