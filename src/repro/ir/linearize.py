"""Prefix linearization of expression trees.

The Graham-Glanville pattern matcher consumes "the prefix linearized form
of a computation tree" (section 3.1).  This module turns a tree into the
token stream the matcher parses, and parses the s-expression notation used
throughout our tests, examples and documentation back into trees.

Terminal-symbol spelling
------------------------
A terminal is the operator's base symbol plus a type-suffix character,
joined with a dot: ``Plus.l``, ``Const.b``, ``Indir.b``.  Only ``Label``
is untyped.  The special constants are typed (``Four.l``) because, per
section 6.4, "the special constants 0, 1, 2, 4 and 8 must have their own
terminal symbols" *within* the type-replicated grammar — a scale constant
in an address computation is long arithmetic, while a byte-typed ``One.b``
is an ordinary operand.

Following section 6.3, integer ``Const`` nodes whose value is 0, 1, 2, 4 or
8 are linearized as the corresponding special token — this is the
"converted to syntactic tokens when the input was generated" guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .ops import Cond, Op, SPECIAL_CONSTS, op_for_symbol
from .tree import Node
from .types import MachineType, type_for_suffix

#: Operators whose terminal symbol carries no type suffix.
UNTYPED_OPS = frozenset({Op.LABEL})


def terminal_symbol(node: Node) -> str:
    """The grammar terminal symbol for *node*.

    ``Cmp`` nodes fold their condition into the symbol (``Cmp.l``) — the
    condition itself is a semantic attribute read off the node by the
    instruction generator, not part of the syntax, per section 6.1.
    """
    op = node.op
    if op is Op.CONST and isinstance(node.value, int) and node.value in SPECIAL_CONSTS:
        return f"{SPECIAL_CONSTS[node.value].symbol}.{node.ty.suffix}"
    if op in UNTYPED_OPS:
        return op.symbol
    return f"{op.symbol}.{node.ty.suffix}"


def split_symbol(symbol: str) -> Tuple[Op, Optional[MachineType]]:
    """Inverse of :func:`terminal_symbol` (modulo special-constant folding)."""
    if "." in symbol:
        base, suffix = symbol.split(".", 1)
        return op_for_symbol(base), type_for_suffix(suffix)
    return op_for_symbol(symbol), None


@dataclass(frozen=True)
class Token:
    """One element of the pattern matcher's input stream.

    ``symbol`` is what the parse tables see; ``node`` carries the semantic
    attributes (value, exact type, condition) along for the descriptor
    machinery.
    """

    symbol: str
    node: Node

    def __repr__(self) -> str:
        if self.node.value is not None:
            return f"{self.symbol}:{self.node.value}"
        return self.symbol


def linearize(tree: Node) -> List[Token]:
    """Prefix-order token stream for one expression tree."""
    return list(_emit(tree))


def _emit(node: Node) -> Iterator[Token]:
    yield Token(terminal_symbol(node), node)
    for kid in node.kids:
        yield from _emit(kid)


def prefix_string(tree: Node) -> str:
    """Human-readable one-line prefix form, as printed in the appendix."""
    return " ".join(repr(token) for token in linearize(tree))


# --------------------------------------------------------------------------
# S-expression parsing: "(Assign.l (Name.l a) (Plus.l (Const.b 27) ...))"
# --------------------------------------------------------------------------

class SexprError(ValueError):
    """Raised for malformed s-expression input."""


def parse_sexpr(text: str) -> Node:
    """Parse the notation produced by :meth:`Node.sexpr` back into a tree."""
    tokens = _tokenize_sexpr(text)
    node, rest = _parse_node(tokens, 0)
    if rest != len(tokens):
        raise SexprError(f"trailing input after tree: {tokens[rest:]}")
    return node


def _tokenize_sexpr(text: str) -> List[str]:
    tokens: List[str] = []
    word = ""
    for ch in text:
        if ch in "()":
            if word:
                tokens.append(word)
                word = ""
            tokens.append(ch)
        elif ch.isspace():
            if word:
                tokens.append(word)
                word = ""
        else:
            word += ch
    if word:
        tokens.append(word)
    return tokens


def _parse_node(tokens: List[str], pos: int) -> Tuple[Node, int]:
    if pos >= len(tokens) or tokens[pos] != "(":
        raise SexprError(f"expected '(' at token {pos}")
    pos += 1
    if pos >= len(tokens):
        raise SexprError("unexpected end of input after '('")
    head = tokens[pos]
    pos += 1

    cond: Optional[Cond] = None
    if ":" in head:
        head, cond_name = head.split(":", 1)
        try:
            cond = Cond[cond_name.upper()]
        except KeyError:
            raise SexprError(f"unknown condition {cond_name!r}") from None

    op, ty = split_symbol(head)
    if ty is None:
        ty = MachineType.LONG

    value = None
    kids: List[Node] = []
    while pos < len(tokens) and tokens[pos] != ")":
        if tokens[pos] == "(":
            kid, pos = _parse_node(tokens, pos)
            kids.append(kid)
        else:
            if value is not None:
                raise SexprError(f"two atoms in one node near token {pos}")
            value = _parse_atom(tokens[pos])
            pos += 1
    if pos >= len(tokens):
        raise SexprError("missing ')'")
    pos += 1  # consume ')'

    # Special constant tokens re-enter as Const nodes so the IR stays uniform.
    from .ops import SPECIAL_CONST_VALUES

    if op in SPECIAL_CONST_VALUES:
        return Node(Op.CONST, ty, value=SPECIAL_CONST_VALUES[op]), pos
    return Node(op, ty, kids, value=value, cond=cond), pos


def _parse_atom(text: str):
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text
