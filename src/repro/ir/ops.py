"""Generic IR operators (the terminal alphabet of the machine grammar).

Figure 1 of the paper lists the terminal symbols used in its examples
(``Assign``, ``Plus``, ``Mul``, ``Cbranch``, ``Cmp``, ``Indir``, ``Name``,
``Dreg``, the special constants ``Zero .. Eight``, ``Const`` and ``Label``).
This module defines the complete operator set of our PCC-style intermediate
representation: the Figure-1 operators, the additional operators a real C
front end produces (logical connectives, increments, calls, conversions),
and the *reversed* operators that phase 1c introduces when it swaps the
operands of a non-commutative operator (section 5.1.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class OpClass(enum.Enum):
    """Coarse operator classification used by the tree transformers."""

    LEAF = "leaf"
    UNARY = "unary"
    BINARY = "binary"
    STMT = "stmt"        # statement-level: branches, jumps, returns
    CONTROL = "control"  # phase-1a fodder: &&, ||, ?:, calls


@dataclass(frozen=True)
class _OpInfo:
    symbol: str
    arity: int               # -1 means variable (calls)
    klass: OpClass
    commutative: bool = False
    reverse_of: Optional[str] = None  # set on Rxxx operators


class Op(enum.Enum):
    """A generic IR operator.

    ``symbol`` is the terminal-symbol base name used in the machine grammar
    (before the type-suffix is attached by linearization), matching the
    paper's convention that terminals begin with an upper-case letter.
    """

    # ------------------------------------------------------------- leaves
    NAME = _OpInfo("Name", 0, OpClass.LEAF)       # global variable
    CONST = _OpInfo("Const", 0, OpClass.LEAF)     # integer/float literal
    ZERO = _OpInfo("Zero", 0, OpClass.LEAF)       # special constant 0
    ONE = _OpInfo("One", 0, OpClass.LEAF)         # special constant 1
    TWO = _OpInfo("Two", 0, OpClass.LEAF)         # special constant 2
    FOUR = _OpInfo("Four", 0, OpClass.LEAF)       # special constant 4
    EIGHT = _OpInfo("Eight", 0, OpClass.LEAF)     # special constant 8
    DREG = _OpInfo("Dreg", 0, OpClass.LEAF)       # dedicated register
    REG = _OpInfo("Reg", 0, OpClass.LEAF)         # phase-1-assigned register
    TEMP = _OpInfo("Temp", 0, OpClass.LEAF)       # compiler temporary (vreg)
    LABEL = _OpInfo("Label", 0, OpClass.LEAF)     # branch target

    # -------------------------------------------------------------- unary
    INDIR = _OpInfo("Indir", 1, OpClass.UNARY)    # memory fetch
    NEG = _OpInfo("Neg", 1, OpClass.UNARY)        # arithmetic negate
    COMPL = _OpInfo("Compl", 1, OpClass.UNARY)    # bitwise complement
    CONV = _OpInfo("Conv", 1, OpClass.UNARY)      # data-type conversion
    ADDROF = _OpInfo("Addrof", 1, OpClass.UNARY)  # address-of
    NOT = _OpInfo("Not", 1, OpClass.CONTROL)      # logical !, rewritten in 1a

    # ------------------------------------------------------------- binary
    ASSIGN = _OpInfo("Assign", 2, OpClass.BINARY)
    PLUS = _OpInfo("Plus", 2, OpClass.BINARY, commutative=True)
    MINUS = _OpInfo("Minus", 2, OpClass.BINARY)
    MUL = _OpInfo("Mul", 2, OpClass.BINARY, commutative=True)
    DIV = _OpInfo("Div", 2, OpClass.BINARY)
    MOD = _OpInfo("Mod", 2, OpClass.BINARY)
    AND = _OpInfo("And", 2, OpClass.BINARY, commutative=True)
    OR = _OpInfo("Or", 2, OpClass.BINARY, commutative=True)
    XOR = _OpInfo("Xor", 2, OpClass.BINARY, commutative=True)
    LSH = _OpInfo("Lsh", 2, OpClass.BINARY)
    RSH = _OpInfo("Rsh", 2, OpClass.BINARY)
    CMP = _OpInfo("Cmp", 2, OpClass.BINARY)       # condition in node.cond

    # increments/decrements carry (lvalue, amount) kids like PCC's INCR/DECR
    POSTINC = _OpInfo("Postinc", 2, OpClass.BINARY)
    POSTDEC = _OpInfo("Postdec", 2, OpClass.BINARY)
    PREINC = _OpInfo("Preinc", 2, OpClass.BINARY)
    PREDEC = _OpInfo("Predec", 2, OpClass.BINARY)

    # ----------------------------------------- reversed operators (s 5.1.3)
    # Introduced by the phase-1c ordering heuristic when it swaps the
    # subtrees of a non-commutative operator; they tell phase 3 to order the
    # computed values properly.
    RASSIGN = _OpInfo("Rassign", 2, OpClass.BINARY, reverse_of="Assign")
    RMINUS = _OpInfo("Rminus", 2, OpClass.BINARY, reverse_of="Minus")
    RDIV = _OpInfo("Rdiv", 2, OpClass.BINARY, reverse_of="Div")
    RMOD = _OpInfo("Rmod", 2, OpClass.BINARY, reverse_of="Mod")
    RLSH = _OpInfo("Rlsh", 2, OpClass.BINARY, reverse_of="Lsh")
    RRSH = _OpInfo("Rrsh", 2, OpClass.BINARY, reverse_of="Rsh")
    RCMP = _OpInfo("Rcmp", 2, OpClass.BINARY, reverse_of="Cmp")

    # ---------------------------------------------------------- statements
    CBRANCH = _OpInfo("Cbranch", 2, OpClass.STMT)  # (test, Label)
    JUMP = _OpInfo("Jump", 1, OpClass.STMT)        # (Label)
    ARG = _OpInfo("Arg", 1, OpClass.STMT)          # push one call argument
    RETURN = _OpInfo("Return", 1, OpClass.STMT)    # (value) or 0 kids
    EXPR = _OpInfo("Expr", 1, OpClass.STMT)        # evaluate for effect

    # ------------------------------------------------------------- control
    # These never reach the pattern matcher: phase 1a rewrites them away.
    ANDAND = _OpInfo("Andand", 2, OpClass.CONTROL)
    OROR = _OpInfo("Oror", 2, OpClass.CONTROL)
    SELECT = _OpInfo("Select", 3, OpClass.CONTROL)  # cond ? a : b
    CALL = _OpInfo("Call", -1, OpClass.CONTROL)     # value = callee name

    # ------------------------------------------------------------ special
    # Phase 1 emits these to communicate its register assignments to the
    # phase-3 register manager (section 5.3.3): the grammar has dedicated
    # productions matching them.
    REGHINT = _OpInfo("Reghint", 1, OpClass.STMT)

    # -------------------------------------------------------------- props
    @property
    def symbol(self) -> str:
        """Terminal-symbol base name (no type suffix)."""
        return self.value.symbol

    @property
    def arity(self) -> int:
        return self.value.arity

    @property
    def klass(self) -> OpClass:
        return self.value.klass

    @property
    def commutative(self) -> bool:
        return self.value.commutative

    @property
    def is_leaf(self) -> bool:
        return self.value.arity == 0

    @property
    def is_reversed(self) -> bool:
        """True for the Rxxx operators introduced by phase 1c."""
        return self.value.reverse_of is not None

    @property
    def unreversed(self) -> "Op":
        """The plain operator an Rxxx operator stands for (self otherwise)."""
        if self.value.reverse_of is None:
            return self
        return _BY_SYMBOL[self.value.reverse_of]

    @property
    def reversed_form(self) -> Optional["Op"]:
        """The Rxxx twin of a non-commutative operator, if one exists."""
        return _REVERSED_FORM.get(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op.{self.name}"


_BY_SYMBOL = {op.value.symbol: op for op in Op}
_REVERSED_FORM = {
    op.unreversed: op for op in Op if op.value.reverse_of is not None
}

#: Special-constant operators, keyed by value.  The paper turns the constants
#: 0, 1, 2, 4 and 8 into their own terminal symbols because of the role they
#: play in comparisons and address construction (sections 6.3 and 6.4).
SPECIAL_CONSTS = {
    0: Op.ZERO,
    1: Op.ONE,
    2: Op.TWO,
    4: Op.FOUR,
    8: Op.EIGHT,
}

SPECIAL_CONST_VALUES = {op: v for v, op in SPECIAL_CONSTS.items()}


def op_for_symbol(symbol: str) -> Op:
    """Look an operator up by its terminal-symbol base name."""
    try:
        return _BY_SYMBOL[symbol]
    except KeyError:
        raise ValueError(f"unknown operator symbol {symbol!r}") from None


class Cond(enum.Enum):
    """Comparison conditions carried by ``Cmp`` nodes.

    The condition is a semantic attribute of the node rather than a separate
    operator, matching the paper's description of conditional branches
    (section 6.1): the *pattern* is ``Branch Cmp reg Zero Label`` and the
    particular condition selects the branch mnemonic (``jeql``, ``jneq``...).
    """

    EQ = "eql"
    NE = "neq"
    LT = "lss"
    LE = "leq"
    GT = "gtr"
    GE = "geq"
    LTU = "lssu"
    LEU = "lequ"
    GTU = "gtru"
    GEU = "gequ"

    @property
    def mnemonic_suffix(self) -> str:
        """VAX branch mnemonic suffix, e.g. ``eql`` for ``jeql``."""
        return self.value

    @property
    def negated(self) -> "Cond":
        return _NEGATE[self]

    @property
    def swapped(self) -> "Cond":
        """The condition equivalent to this one with operands exchanged."""
        return _SWAP[self]

    @property
    def is_unsigned(self) -> bool:
        return self in (Cond.LTU, Cond.LEU, Cond.GTU, Cond.GEU)


_NEGATE = {
    Cond.EQ: Cond.NE, Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE, Cond.GE: Cond.LT,
    Cond.LE: Cond.GT, Cond.GT: Cond.LE,
    Cond.LTU: Cond.GEU, Cond.GEU: Cond.LTU,
    Cond.LEU: Cond.GTU, Cond.GTU: Cond.LEU,
}

_SWAP = {
    Cond.EQ: Cond.EQ, Cond.NE: Cond.NE,
    Cond.LT: Cond.GT, Cond.GT: Cond.LT,
    Cond.LE: Cond.GE, Cond.GE: Cond.LE,
    Cond.LTU: Cond.GTU, Cond.GTU: Cond.LTU,
    Cond.LEU: Cond.GEU, Cond.GEU: Cond.LEU,
}
