"""Expression-tree nodes and statement forests.

The intermediate representation mirrors what the PCC first pass hands to
the second pass: "a forest of expression trees interspersed with target
machine specific instructions" (section 2).  A :class:`Node` is one tree
node — a generic operator, attributed with the machine data type of its
result, plus operator-specific attributes (the constant value, the variable
name, the comparison condition ...).  A :class:`Forest` is the per-routine
sequence of statement trees, labels and directives.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Union

from .ops import Cond, Op
from .types import MachineType


class Node:
    """One IR expression-tree node.

    Attributes
    ----------
    op:
        The generic operator.
    ty:
        The machine data type of the value this node computes.
    kids:
        Child nodes (left to right).
    value:
        Operator-specific payload: the integer value of a ``Const``, the
        string name of a ``Name``/``Temp``/``Label``/``Call``, the register
        name of a ``Dreg``/``Reg``.
    cond:
        Comparison condition, only meaningful on ``Cmp``/``Rcmp`` nodes.
    """

    __slots__ = ("op", "ty", "kids", "value", "cond")

    def __init__(
        self,
        op: Op,
        ty: MachineType,
        kids: Sequence["Node"] = (),
        value: Union[int, float, str, None] = None,
        cond: Optional[Cond] = None,
    ) -> None:
        if op.arity >= 0 and len(kids) != op.arity:
            raise ValueError(
                f"{op.name} takes {op.arity} kids, got {len(kids)}"
            )
        self.op = op
        self.ty = ty
        self.kids: List[Node] = list(kids)
        self.value = value
        self.cond = cond

    # ------------------------------------------------------------ shape
    @property
    def left(self) -> "Node":
        return self.kids[0]

    @property
    def right(self) -> "Node":
        return self.kids[1]

    def size(self) -> int:
        """Number of nodes in this subtree (the phase-1c complexity measure)."""
        return 1 + sum(kid.size() for kid in self.kids)

    def depth(self) -> int:
        """Height of this subtree (a leaf has depth 1)."""
        if not self.kids:
            return 1
        return 1 + max(kid.depth() for kid in self.kids)

    def preorder(self) -> Iterator["Node"]:
        """Yield this node and all descendants in prefix order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.kids))

    def count(self, pred: Callable[["Node"], bool]) -> int:
        """Count nodes in the subtree satisfying *pred*."""
        return sum(1 for node in self.preorder() if pred(node))

    # ----------------------------------------------------------- copying
    def clone(self) -> "Node":
        """Deep structural copy."""
        return Node(
            self.op,
            self.ty,
            [kid.clone() for kid in self.kids],
            self.value,
            self.cond,
        )

    def replace_with(self, other: "Node") -> None:
        """Overwrite this node in place with *other*'s contents.

        The tree rewriters in phase 1 patch trees in place so parents need
        no fix-up; this is the single primitive they use.
        """
        self.op = other.op
        self.ty = other.ty
        self.kids = other.kids
        self.value = other.value
        self.cond = other.cond

    # ---------------------------------------------------------- equality
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return (
            self.op is other.op
            and self.ty is other.ty
            and self.value == other.value
            and self.cond is other.cond
            and self.kids == other.kids
        )

    def __hash__(self) -> int:
        return hash(
            (self.op, self.ty, self.value, self.cond, tuple(map(id, self.kids)))
        )

    # ------------------------------------------------------------ output
    def sexpr(self) -> str:
        """Render as an s-expression, the format `parse_sexpr` reads back."""
        head = f"{self.op.symbol}.{self.ty.suffix}"
        if self.cond is not None:
            head += f":{self.cond.name.lower()}"
        if self.value is not None:
            head += f" {self.value}"
        if not self.kids:
            return f"({head})"
        inner = " ".join(kid.sexpr() for kid in self.kids)
        return f"({head} {inner})"

    def __repr__(self) -> str:
        return self.sexpr()


class LabelDef:
    """A label definition point between statement trees."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelDef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("LabelDef", self.name))

    def __repr__(self) -> str:
        return f"{self.name}:"


ForestItem = Union[Node, LabelDef]


class Forest:
    """A routine's worth of IR: statement trees and label definitions.

    This is the unit handed to a code generator.  ``temps_base`` seeds the
    compiler-temporary counter so that transformation passes and the
    register spiller never collide when inventing new temporaries.
    """

    def __init__(self, items: Sequence[ForestItem] = (), name: str = "main") -> None:
        self.name = name
        self.items: List[ForestItem] = list(items)
        self._next_temp = 0
        self._next_label = 0

    # ---------------------------------------------------------- building
    def add(self, item: ForestItem) -> None:
        self.items.append(item)

    def extend(self, items: Sequence[ForestItem]) -> None:
        self.items.extend(items)

    def new_temp(self, prefix: str = "T") -> str:
        """A fresh compiler-temporary name (a *virtual register*)."""
        self._next_temp += 1
        return f"{prefix}{self._next_temp}"

    def new_label(self) -> str:
        """A fresh compiler-generated label name.

        Labels embed the routine name: generated assembly for several
        routines is concatenated into one unit, and label numbering
        restarting at 1 per routine must not collide there.
        """
        self._next_label += 1
        return f"L{self.name}_{self._next_label}" if self.name != "main" \
            else f"L{self._next_label}"

    # --------------------------------------------------------- traversal
    def trees(self) -> Iterator[Node]:
        """All statement trees, skipping label definitions."""
        for item in self.items:
            if isinstance(item, Node):
                yield item

    def all_nodes(self) -> Iterator[Node]:
        for tree in self.trees():
            yield from tree.preorder()

    def node_count(self) -> int:
        return sum(tree.size() for tree in self.trees())

    def clone(self) -> "Forest":
        copy = Forest(name=self.name)
        for item in self.items:
            copy.add(item.clone() if isinstance(item, Node) else LabelDef(item.name))
        copy._next_temp = self._next_temp
        copy._next_label = self._next_label
        return copy

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[ForestItem]:
        return iter(self.items)

    def __repr__(self) -> str:
        lines = []
        for item in self.items:
            lines.append(repr(item) if isinstance(item, LabelDef) else item.sexpr())
        return "\n".join(lines)


def walk_postorder(node: Node) -> Iterator[Node]:
    """Yield the subtree's nodes children-first (used by the rewriters)."""
    for kid in node.kids:
        yield from walk_postorder(kid)
    yield node
