"""Machine data types for the expression-tree IR.

The paper's code generator works on expression trees whose operators are
"generic operators attributed with the data type of the resulting value"
(section 6.4).  The VAX types that matter to the grammar are the four
integer sizes (byte, word, long, quad) plus the two floating sizes, and
signedness is an attribute that the paper's authors handled semantically
(and, they admit, buggily).  We model each (size, kind, signedness)
combination as one :class:`MachineType`.

Type *suffix characters* (``b``, ``w``, ``l``, ``q``, ``f``, ``d``) are the
same ones the paper's macro preprocessor splices into replicated grammar
symbols such as ``Plus_l`` or ``dx_b``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TypeKind(enum.Enum):
    """Broad classification of a machine type."""

    INT = "int"
    FLOAT = "float"


@dataclass(frozen=True)
class _TypeInfo:
    suffix: str
    size: int
    kind: TypeKind
    signed: bool


class MachineType(enum.Enum):
    """A VAX machine data type, as seen by the machine-description grammar.

    Members carry the assembler suffix character, the size in bytes, the
    broad kind (integer or float) and signedness.  The unsigned integer
    types share suffix characters with their signed twins because the VAX
    addressing hardware and most instructions do not distinguish them; the
    distinction is a semantic attribute, exactly as in the paper.
    """

    BYTE = _TypeInfo("b", 1, TypeKind.INT, True)
    WORD = _TypeInfo("w", 2, TypeKind.INT, True)
    LONG = _TypeInfo("l", 4, TypeKind.INT, True)
    QUAD = _TypeInfo("q", 8, TypeKind.INT, True)
    UBYTE = _TypeInfo("b", 1, TypeKind.INT, False)
    UWORD = _TypeInfo("w", 2, TypeKind.INT, False)
    ULONG = _TypeInfo("l", 4, TypeKind.INT, False)
    UQUAD = _TypeInfo("q", 8, TypeKind.INT, False)
    FLOAT = _TypeInfo("f", 4, TypeKind.FLOAT, True)
    DOUBLE = _TypeInfo("d", 8, TypeKind.FLOAT, True)

    @property
    def suffix(self) -> str:
        """Single-character grammar/assembler suffix (``b w l q f d``)."""
        return self.value.suffix

    @property
    def size(self) -> int:
        """Size in bytes."""
        return self.value.size

    @property
    def kind(self) -> TypeKind:
        return self.value.kind

    @property
    def signed(self) -> bool:
        return self.value.signed

    @property
    def is_integer(self) -> bool:
        return self.value.kind is TypeKind.INT

    @property
    def is_float(self) -> bool:
        return self.value.kind is TypeKind.FLOAT

    def with_signedness(self, signed: bool) -> "MachineType":
        """The same-size integer type with the requested signedness."""
        if self.is_float:
            return self
        return _BY_SIZE_SIGNED[(self.size, signed)]

    def min_value(self) -> int:
        """Smallest representable value (integers only)."""
        if not self.is_integer:
            raise TypeError(f"{self.name} is not an integer type")
        if not self.signed:
            return 0
        return -(1 << (8 * self.size - 1))

    def max_value(self) -> int:
        """Largest representable value (integers only)."""
        if not self.is_integer:
            raise TypeError(f"{self.name} is not an integer type")
        if self.signed:
            return (1 << (8 * self.size - 1)) - 1
        return (1 << (8 * self.size)) - 1

    def wrap(self, value: int) -> int:
        """Truncate *value* to this integer type, respecting signedness."""
        if not self.is_integer:
            raise TypeError(f"{self.name} is not an integer type")
        mask = (1 << (8 * self.size)) - 1
        value &= mask
        if self.signed and value > self.max_value():
            value -= mask + 1
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MachineType.{self.name}"


_BY_SIZE_SIGNED = {
    (1, True): MachineType.BYTE,
    (2, True): MachineType.WORD,
    (4, True): MachineType.LONG,
    (8, True): MachineType.QUAD,
    (1, False): MachineType.UBYTE,
    (2, False): MachineType.UWORD,
    (4, False): MachineType.ULONG,
    (8, False): MachineType.UQUAD,
}

#: The four integer sizes the paper's type replicator expands (class "Y").
INTEGER_TYPES = (
    MachineType.BYTE,
    MachineType.WORD,
    MachineType.LONG,
    MachineType.QUAD,
)

#: Floating types, replicated for the instructions that support them.
FLOAT_TYPES = (MachineType.FLOAT, MachineType.DOUBLE)

#: All distinct grammar types (suffix-distinct; unsigned twins share suffix).
GRAMMAR_TYPES = INTEGER_TYPES + FLOAT_TYPES

_BY_SUFFIX = {t.suffix: t for t in GRAMMAR_TYPES}


def type_for_suffix(suffix: str) -> MachineType:
    """Map a grammar suffix character back to its (signed) machine type."""
    try:
        return _BY_SUFFIX[suffix]
    except KeyError:
        raise ValueError(f"unknown type suffix {suffix!r}") from None


def integer_promote(left: MachineType, right: MachineType) -> MachineType:
    """The usual-arithmetic-conversions result of two operand types.

    Mirrors what the PCC front end does before handing trees to the second
    pass: the wider size wins; unsigned wins at equal size; floats dominate
    integers; DOUBLE dominates FLOAT.
    """
    if left.is_float or right.is_float:
        if MachineType.DOUBLE in (left, right):
            return MachineType.DOUBLE
        return MachineType.FLOAT
    if left.size != right.size:
        wide = left if left.size > right.size else right
        return wide
    signed = left.signed and right.signed
    return left.with_signedness(signed)


def smallest_literal_type(value: int) -> MachineType:
    """The narrowest signed integer type holding *value*.

    The Berkeley Pascal front end in the appendix types the constant 27 as a
    *byte* constant; this helper reproduces that behaviour for our front end
    and builders.
    """
    for ty in INTEGER_TYPES:
        if ty.min_value() <= value <= ty.max_value():
            return ty
    raise OverflowError(f"literal {value} does not fit any integer type")
