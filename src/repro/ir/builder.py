"""Ergonomic constructors for IR trees.

These mirror the trees the PCC/Berkeley-Pascal front ends emit, so tests and
examples can build the paper's trees tersely::

    a := 27 + b   ==>   assign(name("a", LONG),
                               plus(const(27), indir(BYTE,
                                   plus(const_b("b"), dreg("fp"))), LONG))
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .ops import Cond, Op
from .tree import Node
from .types import MachineType, smallest_literal_type

LONG = MachineType.LONG


def const(value: Union[int, float], ty: Optional[MachineType] = None) -> Node:
    """An integer or floating constant; integers default to their
    narrowest signed type, matching the appendix (27 is a *byte* constant)."""
    if ty is None:
        if isinstance(value, float):
            ty = MachineType.DOUBLE
        else:
            ty = smallest_literal_type(value)
    return Node(Op.CONST, ty, value=value)


def name(ident: str, ty: MachineType = LONG) -> Node:
    """A global variable name (addressable memory location)."""
    return Node(Op.NAME, ty, value=ident)


def temp(ident: str, ty: MachineType = LONG) -> Node:
    """A compiler temporary (virtual register in memory)."""
    return Node(Op.TEMP, ty, value=ident)


def dreg(register: str, ty: MachineType = LONG) -> Node:
    """A dedicated register (assigned by the first pass), e.g. ``fp``."""
    return Node(Op.DREG, ty, value=register)


def reg(register: str, ty: MachineType = LONG) -> Node:
    """A register assigned by phase 1 of the code generator."""
    return Node(Op.REG, ty, value=register)


def label(ident: str) -> Node:
    return Node(Op.LABEL, LONG, value=ident)


def indir(ty: MachineType, address: Node) -> Node:
    """A memory fetch of type *ty* through *address*."""
    return Node(Op.INDIR, ty, [address])


def addrof(lvalue: Node) -> Node:
    return Node(Op.ADDROF, LONG, [lvalue])


def assign(dest: Node, src: Node, ty: Optional[MachineType] = None) -> Node:
    return Node(Op.ASSIGN, ty if ty is not None else dest.ty, [dest, src])


def _binary(op: Op, left: Node, right: Node, ty: Optional[MachineType]) -> Node:
    from .types import integer_promote

    if ty is None:
        ty = integer_promote(left.ty, right.ty)
    return Node(op, ty, [left, right])


def plus(left: Node, right: Node, ty: Optional[MachineType] = None) -> Node:
    return _binary(Op.PLUS, left, right, ty)


def minus(left: Node, right: Node, ty: Optional[MachineType] = None) -> Node:
    return _binary(Op.MINUS, left, right, ty)


def mul(left: Node, right: Node, ty: Optional[MachineType] = None) -> Node:
    return _binary(Op.MUL, left, right, ty)


def div(left: Node, right: Node, ty: Optional[MachineType] = None) -> Node:
    return _binary(Op.DIV, left, right, ty)


def mod(left: Node, right: Node, ty: Optional[MachineType] = None) -> Node:
    return _binary(Op.MOD, left, right, ty)


def bitand(left: Node, right: Node, ty: Optional[MachineType] = None) -> Node:
    return _binary(Op.AND, left, right, ty)


def bitor(left: Node, right: Node, ty: Optional[MachineType] = None) -> Node:
    return _binary(Op.OR, left, right, ty)


def bitxor(left: Node, right: Node, ty: Optional[MachineType] = None) -> Node:
    return _binary(Op.XOR, left, right, ty)


def lshift(left: Node, right: Node, ty: Optional[MachineType] = None) -> Node:
    return Node(Op.LSH, ty if ty is not None else left.ty, [left, right])


def rshift(left: Node, right: Node, ty: Optional[MachineType] = None) -> Node:
    return Node(Op.RSH, ty if ty is not None else left.ty, [left, right])


def neg(operand: Node) -> Node:
    return Node(Op.NEG, operand.ty, [operand])


def compl(operand: Node) -> Node:
    return Node(Op.COMPL, operand.ty, [operand])


def conv(ty: MachineType, operand: Node) -> Node:
    """An explicit data-type conversion to *ty*."""
    return Node(Op.CONV, ty, [operand])


def cmp(condition: Cond, left: Node, right: Node) -> Node:
    """A comparison; its type is the comparison type of its operands."""
    from .types import integer_promote

    ty = integer_promote(left.ty, right.ty)
    return Node(Op.CMP, ty, [left, right], cond=condition)


def cbranch(test: Node, target: str) -> Node:
    """Conditional branch to *target* when *test* holds."""
    return Node(Op.CBRANCH, LONG, [test, label(target)])


def jump(target: str) -> Node:
    return Node(Op.JUMP, LONG, [label(target)])


def ret(value: Optional[Node] = None) -> Node:
    if value is None:
        return Node(Op.RETURN, LONG, [Node(Op.ZERO, LONG, value=0)])
    return Node(Op.RETURN, value.ty, [value])


def expr_stmt(value: Node) -> Node:
    """Evaluate *value* for its side effects."""
    return Node(Op.EXPR, value.ty, [value])


def call(callee: str, args: Sequence[Node] = (), ty: MachineType = LONG) -> Node:
    return Node(Op.CALL, ty, list(args), value=callee)


def andand(left: Node, right: Node) -> Node:
    return Node(Op.ANDAND, MachineType.LONG, [left, right])


def oror(left: Node, right: Node) -> Node:
    return Node(Op.OROR, MachineType.LONG, [left, right])


def select(cond_tree: Node, then_tree: Node, else_tree: Node) -> Node:
    return Node(Op.SELECT, then_tree.ty, [cond_tree, then_tree, else_tree])


def postinc(lvalue: Node, amount: int = 1) -> Node:
    return Node(Op.POSTINC, lvalue.ty, [lvalue, const(amount, lvalue.ty)])


def postdec(lvalue: Node, amount: int = 1) -> Node:
    return Node(Op.POSTDEC, lvalue.ty, [lvalue, const(amount, lvalue.ty)])


def preinc(lvalue: Node, amount: int = 1) -> Node:
    return Node(Op.PREINC, lvalue.ty, [lvalue, const(amount, lvalue.ty)])


def predec(lvalue: Node, amount: int = 1) -> Node:
    return Node(Op.PREDEC, lvalue.ty, [lvalue, const(amount, lvalue.ty)])


def local(offset: int, ty: MachineType, frame_reg: str = "fp") -> Node:
    """A frame-relative local variable: ``Indir ty (Plus Const(off) Dreg(fp))``.

    This is the shape the Berkeley Pascal front end produces for the local
    ``b`` in the appendix example.
    """
    return indir(ty, plus(const(offset), dreg(frame_reg), MachineType.LONG))
