"""PCC-style expression-tree intermediate representation.

The IR is the interface between "front ends" (our C-subset front end, the
workload generator, hand-built trees) and the two code generators (the
Graham-Glanville table-driven one in :mod:`repro.codegen` and the PCC-style
baseline in :mod:`repro.pcc`).
"""

from . import builder
from .builder import (
    addrof, andand, assign, bitand, bitor, bitxor, call, cbranch, cmp, compl,
    const, conv, dreg, div, expr_stmt, indir, jump, label, local, lshift,
    minus, mod, mul, name, neg, oror, plus, postdec, postinc, predec, preinc,
    reg, ret, rshift, select, temp,
)
from .linearize import (
    Token, UNTYPED_OPS, linearize, parse_sexpr, prefix_string, split_symbol,
    terminal_symbol,
)
from .ops import Cond, Op, OpClass, SPECIAL_CONSTS, op_for_symbol
from .tree import Forest, LabelDef, Node, walk_postorder
from .types import (
    FLOAT_TYPES, GRAMMAR_TYPES, INTEGER_TYPES, MachineType, TypeKind,
    integer_promote, smallest_literal_type, type_for_suffix,
)
from .validate import IRValidationError, LVALUE_OPS, check_forest, check_tree, validate

__all__ = [
    "builder",
    # types
    "MachineType", "TypeKind", "INTEGER_TYPES", "FLOAT_TYPES", "GRAMMAR_TYPES",
    "integer_promote", "smallest_literal_type", "type_for_suffix",
    # ops
    "Op", "OpClass", "Cond", "SPECIAL_CONSTS", "op_for_symbol",
    # tree
    "Node", "Forest", "LabelDef", "walk_postorder",
    # linearize
    "Token", "UNTYPED_OPS", "linearize", "terminal_symbol", "split_symbol",
    "prefix_string", "parse_sexpr",
    # validate
    "validate", "check_tree", "check_forest", "IRValidationError", "LVALUE_OPS",
    # builders
    "const", "name", "temp", "dreg", "reg", "label", "indir", "addrof",
    "assign", "plus", "minus", "mul", "div", "mod", "bitand", "bitor",
    "bitxor", "lshift", "rshift", "neg", "compl", "conv", "cmp", "cbranch",
    "jump", "ret", "expr_stmt", "call", "andand", "oror", "select",
    "postinc", "postdec", "preinc", "predec", "local",
]
