"""Well-formedness checks on IR trees and forests.

The paper's authors "spent inordinate amounts of time writing and testing
expressions that exercise the union of problem areas" (section 6.5); a
validator catches malformed trees before they reach the pattern matcher,
where a shape error would surface as a mystifying syntactic block.
"""

from __future__ import annotations

from typing import List, Union

from .ops import Op, OpClass
from .tree import Forest, LabelDef, Node


class IRValidationError(ValueError):
    """Raised when a tree or forest violates IR well-formedness rules."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = errors


#: Operators that denote an assignable location.
LVALUE_OPS = frozenset({Op.NAME, Op.TEMP, Op.INDIR, Op.DREG, Op.REG})

#: Leaf operators that must carry a string value.
_STRING_LEAVES = frozenset({Op.NAME, Op.TEMP, Op.LABEL, Op.DREG, Op.REG})


def check_tree(tree: Node, path: str = "root") -> List[str]:
    """Return a list of violations found in *tree* (empty when valid)."""
    errors: List[str] = []
    _check(tree, path, errors, statement=True)
    return errors


def _check(node: Node, path: str, errors: List[str], statement: bool) -> None:
    op = node.op

    if op.arity >= 0 and len(node.kids) != op.arity:
        errors.append(
            f"{path}: {op.name} expects {op.arity} kids, has {len(node.kids)}"
        )

    if op in _STRING_LEAVES and not isinstance(node.value, str):
        errors.append(f"{path}: {op.name} needs a string value, has {node.value!r}")

    if op is Op.CONST and not isinstance(node.value, (int, float)):
        errors.append(f"{path}: Const needs a numeric value, has {node.value!r}")

    if op in (Op.CMP, Op.RCMP) and node.cond is None:
        errors.append(f"{path}: {op.name} node lacks a condition")

    if op is Op.CALL and not isinstance(node.value, str):
        errors.append(f"{path}: Call needs a callee name")

    if op in (Op.ASSIGN, Op.RASSIGN) and node.kids:
        dest = node.kids[0] if op is Op.ASSIGN else node.kids[-1]
        if dest.op not in LVALUE_OPS:
            errors.append(
                f"{path}: {op.name} destination {dest.op.name} is not an lvalue"
            )

    if op in (Op.POSTINC, Op.POSTDEC, Op.PREINC, Op.PREDEC) and node.kids:
        if node.kids[0].op not in LVALUE_OPS:
            errors.append(f"{path}: {op.name} operand is not an lvalue")
        if len(node.kids) > 1 and node.kids[1].op is not Op.CONST:
            errors.append(f"{path}: {op.name} amount must be a Const")

    if op is Op.CBRANCH and node.kids:
        test = node.kids[0]
        if test.op not in (Op.CMP, Op.RCMP):
            errors.append(f"{path}: Cbranch test is {test.op.name}, expected Cmp")
        if len(node.kids) > 1 and node.kids[1].op is not Op.LABEL:
            errors.append(f"{path}: Cbranch target is not a Label")

    if op is Op.JUMP and node.kids and node.kids[0].op is not Op.LABEL:
        errors.append(f"{path}: Jump target is not a Label")

    if not statement and op.klass is OpClass.STMT:
        errors.append(f"{path}: statement operator {op.name} nested in expression")

    for index, kid in enumerate(node.kids):
        _check(kid, f"{path}.{index}", errors, statement=False)


def check_forest(forest: Forest) -> List[str]:
    """Validate every tree in the forest plus label-reference integrity."""
    errors: List[str] = []
    defined = set()
    referenced = set()

    for position, item in enumerate(forest):
        if isinstance(item, LabelDef):
            if item.name in defined:
                errors.append(f"item {position}: label {item.name} defined twice")
            defined.add(item.name)
            continue
        errors.extend(check_tree(item, path=f"item {position}"))
        for node in item.preorder():
            if node.op is Op.LABEL and isinstance(node.value, str):
                referenced.add(node.value)

    for missing in sorted(referenced - defined):
        errors.append(f"label {missing} referenced but never defined")
    return errors


def validate(subject: Union[Node, Forest]) -> None:
    """Raise :class:`IRValidationError` if *subject* is malformed."""
    errors = check_tree(subject) if isinstance(subject, Node) else check_forest(subject)
    if errors:
        raise IRValidationError(errors)
