"""AST node definitions for the C subset.

Deliberately small and flat: the parser builds these, the lowerer turns
them into IR forests.  Types are :class:`CType` — a machine type plus
pointer/array structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..ir.types import MachineType


@dataclass(frozen=True)
class CType:
    """A C-subset type: base machine type, pointer depth, array length."""

    base: MachineType
    pointer: int = 0           # levels of indirection
    array: Optional[int] = None  # element count for top-level arrays
    is_void: bool = False

    @property
    def is_pointer(self) -> bool:
        return self.pointer > 0

    @property
    def is_scalar(self) -> bool:
        return self.array is None and not self.is_void

    @property
    def machine_type(self) -> MachineType:
        """The machine type a value of this C type occupies."""
        if self.is_pointer:
            return MachineType.ULONG
        return self.base

    def element(self) -> "CType":
        """The type obtained by indexing or dereferencing once."""
        if self.array is not None:
            return CType(self.base, self.pointer)
        if self.pointer > 0:
            return CType(self.base, self.pointer - 1)
        raise TypeError(f"cannot dereference {self}")

    def element_size(self) -> int:
        inner = self.element()
        return inner.machine_type.size

    def size(self) -> int:
        if self.array is not None:
            return self.array * CType(self.base, self.pointer).machine_type.size
        return self.machine_type.size

    def __str__(self) -> str:
        text = "void" if self.is_void else self.base.name.lower()
        text += "*" * self.pointer
        if self.array is not None:
            text += f"[{self.array}]"
        return text


VOID = CType(MachineType.LONG, is_void=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0
    ty: MachineType = MachineType.LONG


@dataclass
class FloatLit(Expr):
    value: float = 0.0
    ty: MachineType = MachineType.DOUBLE


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""          # - ~ ! & * ++pre --pre
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Postfix(Expr):
    op: str = ""          # ++ --
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None     # type: ignore[assignment]
    right: Expr = None    # type: ignore[assignment]


@dataclass
class Assign(Expr):
    op: str = "="         # = += -= ...
    target: Expr = None   # type: ignore[assignment]
    value: Expr = None    # type: ignore[assignment]


@dataclass
class Ternary(Expr):
    cond: Expr = None     # type: ignore[assignment]
    then: Expr = None     # type: ignore[assignment]
    other: Expr = None    # type: ignore[assignment]


@dataclass
class Index(Expr):
    base: Expr = None     # type: ignore[assignment]
    index: Expr = None    # type: ignore[assignment]


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Cast(Expr):
    ty: CType = None      # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# Statements and declarations
# --------------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Expr = None          # type: ignore[assignment]
    then: Stmt = None          # type: ignore[assignment]
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None          # type: ignore[assignment]
    body: Stmt = None          # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None          # type: ignore[assignment]
    cond: Expr = None          # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None          # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Goto(Stmt):
    label: str = ""


@dataclass
class Labeled(Stmt):
    label: str = ""
    stmt: Stmt = None          # type: ignore[assignment]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    decls: List["VarDecl"] = field(default_factory=list)
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl:
    name: str
    ty: CType
    register: bool = False
    line: int = 0


@dataclass
class Param:
    name: str
    ty: CType


@dataclass
class FuncDef:
    name: str
    return_type: CType
    params: List[Param]
    body: Block
    line: int = 0


@dataclass
class Program:
    globals: List[VarDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
