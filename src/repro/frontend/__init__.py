"""The C-subset front end ("the front ends" substrate of section 2)."""

from . import cast
from .cast import CType, VOID
from .lexer import LexError, Tok, TokKind, tokenize
from .lower import CompiledProgram, LowerError, compile_c, lower_program
from .parser import ParseError, Parser, parse

__all__ = [
    "cast", "CType", "VOID",
    "tokenize", "Tok", "TokKind", "LexError",
    "parse", "Parser", "ParseError",
    "lower_program", "compile_c", "CompiledProgram", "LowerError",
]
