"""Lowering: C-subset AST to PCC-style IR forests.

This plays the part of the PCC first pass: symbol resolution, frame
layout, type computation, and the translation into generic-operator
expression trees.  It deliberately leaves conversions implicit wherever
the real front ends did ("the front ends rarely generate the conversion
operators", section 6.4) — phase 1b and the grammar cope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.ops import Cond, Op
from ..ir.tree import Forest, LabelDef, Node
from ..ir.types import MachineType, integer_promote
from ..targets.base import Machine
from ..targets.registry import resolve_target
from . import cast
from .cast import CType


class LowerError(Exception):
    """A semantic error: undeclared name, bad lvalue, type misuse."""


_REL_CONDS = {
    "==": Cond.EQ, "!=": Cond.NE,
    "<": Cond.LT, "<=": Cond.LE, ">": Cond.GT, ">=": Cond.GE,
}
_UNSIGNED_CONDS = {
    Cond.LT: Cond.LTU, Cond.LE: Cond.LEU,
    Cond.GT: Cond.GTU, Cond.GE: Cond.GEU,
}
_BINOPS = {
    "+": Op.PLUS, "-": Op.MINUS, "*": Op.MUL, "/": Op.DIV, "%": Op.MOD,
    "&": Op.AND, "|": Op.OR, "^": Op.XOR, "<<": Op.LSH, ">>": Op.RSH,
}


@dataclass
class Symbol:
    name: str
    ty: CType
    kind: str               # "global" | "local" | "param" | "register"
    offset: int = 0         # frame/arg offset for local/param
    register: str = ""      # for register variables


@dataclass
class CompiledProgram:
    """All routines of one source file, plus global-data layout."""

    forests: Dict[str, Forest] = field(default_factory=dict)
    globals: Dict[str, CType] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)

    def forest(self, name: str) -> Forest:
        return self.forests[name]


class FunctionLowerer:
    def __init__(
        self,
        func: cast.FuncDef,
        globals_: Dict[str, Symbol],
        machine: Machine,
    ) -> None:
        self.func = func
        self.machine = machine
        self.scope: Dict[str, Symbol] = dict(globals_)
        self.forest = Forest(name=func.name)
        self._frame_offset = 0
        self._break_stack: List[str] = []
        self._continue_stack: List[str] = []
        self._register_vars = [r for r in ("r11", "r10", "r9", "r8", "r7", "r6")]

    # ------------------------------------------------------------ frames
    def _declare_params(self, params) -> None:
        # VAX calls convention: 4(ap) is the first argument; integers and
        # pointers occupy one longword each, doubles two
        offset = 4
        for param in params:
            self.scope[param.name] = Symbol(param.name, param.ty, "param",
                                            offset=offset)
            size = param.ty.machine_type.size
            offset += max(4, size if param.ty.machine_type.is_float else 4)

    def _declare_local(self, decl: cast.VarDecl) -> None:
        if decl.register and decl.ty.is_scalar and self._register_vars:
            register = self._register_vars.pop(0)
            self.scope[decl.name] = Symbol(decl.name, decl.ty, "register",
                                           register=register)
            return
        size = decl.ty.size()
        align = min(4, max(1, decl.ty.machine_type.size))
        self._frame_offset += size
        self._frame_offset += (-self._frame_offset) % align
        self.scope[decl.name] = Symbol(decl.name, decl.ty, "local",
                                       offset=-self._frame_offset)

    # ------------------------------------------------------------ driver
    def lower(self) -> Forest:
        self._declare_params(self.func.params)
        self._lower_block(self.func.body)
        return self.forest

    def _lower_block(self, block: cast.Block) -> None:
        for decl in block.decls:
            self._declare_local(decl)
        for stmt in block.stmts:
            self._lower_stmt(stmt)

    # -------------------------------------------------------- statements
    def _lower_stmt(self, stmt: cast.Stmt) -> None:
        if isinstance(stmt, cast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, cast.ExprStmt):
            if stmt.expr is None:
                return
            tree, _ = self._rvalue(stmt.expr)
            self.forest.add(Node(Op.EXPR, tree.ty, [tree]))
        elif isinstance(stmt, cast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, cast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, cast.DoWhile):
            self._lower_do(stmt)
        elif isinstance(stmt, cast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, cast.Return):
            if stmt.value is None:
                value = Node(Op.CONST, MachineType.LONG, value=0)
                self.forest.add(Node(Op.RETURN, MachineType.LONG, [value]))
            else:
                tree, ty = self._rvalue(stmt.value)
                # the value travels in r0 at the declared return width;
                # a narrower value widens through the grammar's chains
                ret_ty = self.func.return_type
                ret_mt = MachineType.LONG if ret_ty.is_void \
                    else ret_ty.machine_type
                self.forest.add(Node(Op.RETURN, ret_mt, [tree]))
        elif isinstance(stmt, cast.Goto):
            self._jump(f"U{self.func.name}_{stmt.label}")
        elif isinstance(stmt, cast.Labeled):
            self.forest.add(LabelDef(f"U{self.func.name}_{stmt.label}"))
            self._lower_stmt(stmt.stmt)
        elif isinstance(stmt, cast.Break):
            if not self._break_stack:
                raise LowerError(f"line {stmt.line}: break outside a loop")
            self._jump(self._break_stack[-1])
        elif isinstance(stmt, cast.Continue):
            if not self._continue_stack:
                raise LowerError(f"line {stmt.line}: continue outside a loop")
            self._jump(self._continue_stack[-1])
        else:
            raise LowerError(f"unhandled statement {type(stmt).__name__}")

    def _jump(self, label: str) -> None:
        self.forest.add(
            Node(Op.JUMP, MachineType.LONG,
                 [Node(Op.LABEL, MachineType.LONG, value=label)])
        )

    def _branch_if_false(self, cond: cast.Expr, target: str) -> None:
        tree, _ = self._rvalue(cond)
        negated = Node(Op.NOT, MachineType.LONG, [tree])
        self.forest.add(
            Node(Op.CBRANCH, MachineType.LONG,
                 [negated, Node(Op.LABEL, MachineType.LONG, value=target)])
        )

    def _lower_if(self, stmt: cast.If) -> None:
        else_label = self.forest.new_label()
        self._branch_if_false(stmt.cond, else_label)
        self._lower_stmt(stmt.then)
        if stmt.other is not None:
            end_label = self.forest.new_label()
            self._jump(end_label)
            self.forest.add(LabelDef(else_label))
            self._lower_stmt(stmt.other)
            self.forest.add(LabelDef(end_label))
        else:
            self.forest.add(LabelDef(else_label))

    def _lower_while(self, stmt: cast.While) -> None:
        top = self.forest.new_label()
        end = self.forest.new_label()
        self.forest.add(LabelDef(top))
        self._branch_if_false(stmt.cond, end)
        self._break_stack.append(end)
        self._continue_stack.append(top)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._jump(top)
        self.forest.add(LabelDef(end))

    def _lower_do(self, stmt: cast.DoWhile) -> None:
        top = self.forest.new_label()
        end = self.forest.new_label()
        step = self.forest.new_label()
        self.forest.add(LabelDef(top))
        self._break_stack.append(end)
        self._continue_stack.append(step)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self.forest.add(LabelDef(step))
        tree, _ = self._rvalue(stmt.cond)
        self.forest.add(
            Node(Op.CBRANCH, MachineType.LONG,
                 [tree, Node(Op.LABEL, MachineType.LONG, value=top)])
        )
        self.forest.add(LabelDef(end))

    def _lower_for(self, stmt: cast.For) -> None:
        top = self.forest.new_label()
        step_label = self.forest.new_label()
        end = self.forest.new_label()
        if stmt.init is not None:
            tree, _ = self._rvalue(stmt.init)
            self.forest.add(Node(Op.EXPR, tree.ty, [tree]))
        self.forest.add(LabelDef(top))
        if stmt.cond is not None:
            self._branch_if_false(stmt.cond, end)
        self._break_stack.append(end)
        self._continue_stack.append(step_label)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self.forest.add(LabelDef(step_label))
        if stmt.step is not None:
            tree, _ = self._rvalue(stmt.step)
            self.forest.add(Node(Op.EXPR, tree.ty, [tree]))
        self._jump(top)
        self.forest.add(LabelDef(end))

    # --------------------------------------------------------- expressions
    def _symbol(self, name: str, line: int) -> Symbol:
        try:
            return self.scope[name]
        except KeyError:
            raise LowerError(f"line {line}: undeclared identifier {name!r}") from None

    def _rvalue(self, expr: cast.Expr) -> Tuple[Node, CType]:
        """Lower an expression for its value: (IR tree, C type)."""
        if isinstance(expr, cast.IntLit):
            return Node(Op.CONST, expr.ty, value=expr.value), CType(expr.ty)
        if isinstance(expr, cast.FloatLit):
            return Node(Op.CONST, expr.ty, value=expr.value), CType(expr.ty)
        if isinstance(expr, cast.Ident):
            symbol = self._symbol(expr.name, expr.line)
            if symbol.ty.array is not None:
                return self._address_of_symbol(symbol), CType(symbol.ty.base,
                                                              symbol.ty.pointer + 1)
            return self._load_symbol(symbol), symbol.ty
        if isinstance(expr, cast.Unary):
            return self._unary(expr)
        if isinstance(expr, cast.Postfix):
            return self._incdec(expr.operand, expr.op, post=True)
        if isinstance(expr, cast.Binary):
            return self._binary(expr)
        if isinstance(expr, cast.Assign):
            return self._assign(expr)
        if isinstance(expr, cast.Ternary):
            cond, _ = self._rvalue(expr.cond)
            then, then_ty = self._rvalue(expr.then)
            other, other_ty = self._rvalue(expr.other)
            ty = self._merge_types(then_ty, other_ty)
            return Node(Op.SELECT, ty.machine_type, [cond, then, other]), ty
        if isinstance(expr, cast.Index):
            address, element = self._index_address(expr)
            return Node(Op.INDIR, element.machine_type, [address]), element
        if isinstance(expr, cast.CallExpr):
            args = [self._rvalue(a)[0] for a in expr.args]
            return (Node(Op.CALL, MachineType.LONG, args, value=expr.callee),
                    CType(MachineType.LONG))
        if isinstance(expr, cast.Cast):
            inner, inner_ty = self._rvalue(expr.operand)
            target = expr.ty.machine_type
            if target is inner.ty:
                return inner, expr.ty
            if expr.ty.is_pointer or inner_ty.is_pointer:
                inner.ty = target  # pointer reinterpretation is free
                return inner, expr.ty
            return Node(Op.CONV, target, [inner]), expr.ty
        raise LowerError(f"unhandled expression {type(expr).__name__}")

    def _merge_types(self, left: CType, right: CType) -> CType:
        if left.is_pointer:
            return left
        if right.is_pointer:
            return right
        return CType(integer_promote(left.machine_type, right.machine_type))

    # --------------------------------------------------------------- unary
    def _unary(self, expr: cast.Unary) -> Tuple[Node, CType]:
        if expr.op in ("++pre", "--pre"):
            return self._incdec(expr.operand, expr.op[:2], post=False)
        if expr.op == "&":
            address, ty = self._address(expr.operand)
            return address, CType(ty.base, ty.pointer + 1)
        if expr.op == "*":
            pointer, ty = self._rvalue(expr.operand)
            element = ty.element()
            return Node(Op.INDIR, element.machine_type, [pointer]), element
        operand, ty = self._rvalue(expr.operand)
        if expr.op == "-":
            return Node(Op.NEG, ty.machine_type, [operand]), ty
        if expr.op == "~":
            return Node(Op.COMPL, ty.machine_type, [operand]), ty
        if expr.op == "!":
            return (Node(Op.NOT, MachineType.LONG, [operand]),
                    CType(MachineType.LONG))
        raise LowerError(f"unhandled unary {expr.op!r}")

    def _incdec(self, target: cast.Expr, op: str, post: bool) -> Tuple[Node, CType]:
        lvalue, ty = self._lvalue(target)
        step = ty.element_size() if ty.is_pointer else 1
        table = {
            ("++", True): Op.POSTINC, ("--", True): Op.POSTDEC,
            ("++", False): Op.PREINC, ("--", False): Op.PREDEC,
        }
        ir_op = table[(op, post)]
        amount = Node(Op.CONST, MachineType.LONG, value=step)
        return Node(ir_op, ty.machine_type, [lvalue, amount]), ty

    # -------------------------------------------------------------- binary
    def _binary(self, expr: cast.Binary) -> Tuple[Node, CType]:
        if expr.op in ("&&", "||"):
            left, _ = self._rvalue(expr.left)
            right, _ = self._rvalue(expr.right)
            op = Op.ANDAND if expr.op == "&&" else Op.OROR
            return (Node(op, MachineType.LONG, [left, right]),
                    CType(MachineType.LONG))
        if expr.op in _REL_CONDS:
            left, left_ty = self._rvalue(expr.left)
            right, right_ty = self._rvalue(expr.right)
            promoted = integer_promote(left.ty, right.ty)
            cond = _REL_CONDS[expr.op]
            if (not promoted.signed or left_ty.is_pointer or right_ty.is_pointer):
                cond = _UNSIGNED_CONDS.get(cond, cond)
            return (Node(Op.CMP, promoted, [left, right], cond=cond),
                    CType(MachineType.LONG))

        left, left_ty = self._rvalue(expr.left)
        right, right_ty = self._rvalue(expr.right)

        # pointer arithmetic
        if expr.op == "+" and left_ty.is_pointer:
            return self._pointer_add(left, left_ty, right), left_ty
        if expr.op == "+" and right_ty.is_pointer:
            return self._pointer_add(right, right_ty, left), right_ty
        if expr.op == "-" and left_ty.is_pointer and right_ty.is_pointer:
            diff = Node(Op.MINUS, MachineType.LONG, [left, right])
            size = Node(Op.CONST, MachineType.LONG, value=left_ty.element_size())
            return (Node(Op.DIV, MachineType.LONG, [diff, size]),
                    CType(MachineType.LONG))
        if expr.op == "-" and left_ty.is_pointer:
            scaled = self._scale(right, left_ty.element_size())
            return (Node(Op.MINUS, left.ty, [left, scaled])), left_ty

        ir_op = _BINOPS[expr.op]
        if expr.op in ("<<", ">>"):
            ty = CType(self._promote_int(left.ty))
            return Node(ir_op, ty.machine_type, [left, right]), ty
        promoted = self._promote_int(integer_promote(left.ty, right.ty))
        return Node(ir_op, promoted, [left, right]), CType(promoted)

    @staticmethod
    def _promote_int(ty: MachineType) -> MachineType:
        """C's integer promotions: sub-int operands compute as int."""
        if ty.is_integer and ty.size < 4:
            return MachineType.LONG if ty.signed else MachineType.ULONG
        return ty

    def _pointer_add(self, pointer: Node, ty: CType, index: Node) -> Node:
        return Node(Op.PLUS, pointer.ty,
                    [pointer, self._scale(index, ty.element_size())])

    @staticmethod
    def _scale(index: Node, size: int) -> Node:
        if size == 1:
            return index
        if index.op is Op.CONST and isinstance(index.value, int):
            return Node(Op.CONST, MachineType.LONG, value=index.value * size)
        factor = Node(Op.CONST, MachineType.LONG, value=size)
        return Node(Op.MUL, MachineType.LONG, [factor, index])

    # ---------------------------------------------------------- assignment
    def _assign(self, expr: cast.Assign) -> Tuple[Node, CType]:
        if expr.op == "=":
            lvalue, ty = self._lvalue(expr.target)
            value, value_ty = self._rvalue(expr.value)
            if ty.is_pointer and not value_ty.is_pointer:
                value.ty = ty.machine_type
            return Node(Op.ASSIGN, ty.machine_type, [lvalue, value]), ty

        # compound assignment: a op= b  ==>  a = a op b, with the lvalue
        # cloned (simple lvalues) or its address captured in a temporary
        # (complex lvalues), the section 6.5 transformation.
        op_text = expr.op[:-1]
        lvalue, ty = self._lvalue(expr.target)
        if self._is_simple_lvalue(lvalue):
            read = lvalue.clone()
        else:
            address = lvalue.kids[0]
            temp = Node(Op.TEMP, MachineType.ULONG, value=self.forest.new_temp())
            self.forest.add(Node(Op.ASSIGN, MachineType.ULONG,
                                 [temp, address]))
            lvalue = Node(Op.INDIR, ty.machine_type, [temp.clone()])
            read = lvalue.clone()
        value, value_ty = self._rvalue(expr.value)
        if ty.is_pointer and op_text in ("+", "-"):
            value = self._scale(value, ty.element_size())
        ir_op = _BINOPS[op_text]
        combined = Node(ir_op, ty.machine_type, [read, value])
        return Node(Op.ASSIGN, ty.machine_type, [lvalue, combined]), ty

    @staticmethod
    def _is_simple_lvalue(lvalue: Node) -> bool:
        if lvalue.op in (Op.NAME, Op.TEMP, Op.DREG, Op.REG):
            return True
        if lvalue.op is Op.INDIR:
            address = lvalue.kids[0]
            if address.op in (Op.DREG, Op.REG, Op.NAME, Op.TEMP):
                return True
            if (address.op is Op.PLUS
                    and address.kids[0].op is Op.CONST
                    and address.kids[1].op is Op.DREG):
                return True
        return False

    # -------------------------------------------------------------- places
    def _load_symbol(self, symbol: Symbol) -> Node:
        mt = symbol.ty.machine_type
        if symbol.kind == "global":
            return Node(Op.NAME, mt, value=symbol.name)
        if symbol.kind == "register":
            return Node(Op.DREG, mt, value=symbol.register)
        return Node(Op.INDIR, mt, [self._frame_address(symbol)])

    def _frame_address(self, symbol: Symbol) -> Node:
        base = self.machine.frame_pointer if symbol.kind == "local" else self.machine.arg_pointer
        return Node(Op.PLUS, MachineType.LONG, [
            Node(Op.CONST, MachineType.LONG, value=symbol.offset),
            Node(Op.DREG, MachineType.LONG, value=base),
        ])

    def _address_of_symbol(self, symbol: Symbol) -> Node:
        if symbol.kind == "global":
            return Node(Op.ADDROF, MachineType.ULONG,
                        [Node(Op.NAME, symbol.ty.machine_type, value=symbol.name)])
        if symbol.kind == "register":
            raise LowerError(f"cannot take the address of register variable "
                             f"{symbol.name!r}")
        return self._frame_address(symbol)

    def _lvalue(self, expr: cast.Expr) -> Tuple[Node, CType]:
        if isinstance(expr, cast.Ident):
            symbol = self._symbol(expr.name, expr.line)
            if symbol.ty.array is not None:
                raise LowerError(f"line {expr.line}: array {expr.name!r} is "
                                 "not assignable")
            return self._load_symbol(symbol), symbol.ty
        if isinstance(expr, cast.Unary) and expr.op == "*":
            pointer, ty = self._rvalue(expr.operand)
            element = ty.element()
            return Node(Op.INDIR, element.machine_type, [pointer]), element
        if isinstance(expr, cast.Index):
            address, element = self._index_address(expr)
            return Node(Op.INDIR, element.machine_type, [address]), element
        raise LowerError(f"line {expr.line}: not an lvalue: "
                         f"{type(expr).__name__}")

    def _address(self, expr: cast.Expr) -> Tuple[Node, CType]:
        if isinstance(expr, cast.Ident):
            symbol = self._symbol(expr.name, expr.line)
            return self._address_of_symbol(symbol), symbol.ty
        if isinstance(expr, cast.Unary) and expr.op == "*":
            pointer, ty = self._rvalue(expr.operand)
            return pointer, ty.element()
        if isinstance(expr, cast.Index):
            address, element = self._index_address(expr)
            return address, element
        raise LowerError(f"line {expr.line}: cannot take this address")

    def _index_address(self, expr: cast.Index) -> Tuple[Node, CType]:
        base, base_ty = self._rvalue(expr.base)
        if not base_ty.is_pointer:
            raise LowerError(f"line {expr.line}: indexing a non-pointer")
        index, _ = self._rvalue(expr.index)
        element = base_ty.element()
        scaled = self._scale(index, element.machine_type.size)
        return (Node(Op.PLUS, MachineType.LONG, [base, scaled]), element)


def lower_program(
    program: cast.Program, machine: Optional[Machine] = None
) -> CompiledProgram:
    """Lower a parsed program into IR forests plus global layout.

    ``machine`` defaults to the session's resolved target (``REPRO_TARGET``
    or the registry default), never to a hard-wired machine.
    """
    if machine is None:
        machine = resolve_target(None).machine
    globals_: Dict[str, Symbol] = {}
    compiled = CompiledProgram()
    for decl in program.globals:
        globals_[decl.name] = Symbol(decl.name, decl.ty, "global")
        compiled.globals[decl.name] = decl.ty
    for func in program.functions:
        lowerer = FunctionLowerer(func, globals_, machine)
        compiled.forests[func.name] = lowerer.lower()
        compiled.order.append(func.name)
    return compiled


def compile_c(source: str, machine: Optional[Machine] = None) -> CompiledProgram:
    """Parse and lower C-subset source in one call."""
    from .parser import parse

    return lower_program(parse(source), machine)
