"""Recursive-descent parser for the C subset."""

from __future__ import annotations

from typing import List, Optional

from ..ir.types import MachineType
from . import cast
from .cast import CType, VOID
from .lexer import Tok, TokKind, tokenize

_BASE_TYPES = {
    "char": MachineType.BYTE,
    "short": MachineType.WORD,
    "int": MachineType.LONG,
    "long": MachineType.LONG,
    "float": MachineType.FLOAT,
    "double": MachineType.DOUBLE,
}

_UNSIGNED = {
    MachineType.BYTE: MachineType.UBYTE,
    MachineType.WORD: MachineType.UWORD,
    MachineType.LONG: MachineType.ULONG,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class ParseError(SyntaxError):
    def __init__(self, token: Tok, message: str) -> None:
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.position = 0

    # ------------------------------------------------------------ cursor
    @property
    def tok(self) -> Tok:
        return self.tokens[self.position]

    def peek(self, ahead: int = 1) -> Tok:
        index = min(self.position + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Tok:
        token = self.tok
        if token.kind is not TokKind.EOF:
            self.position += 1
        return token

    def expect_op(self, op: str) -> Tok:
        if not self.tok.is_op(op):
            raise ParseError(self.tok, f"expected {op!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.tok.kind is not TokKind.IDENT:
            raise ParseError(self.tok, "expected identifier")
        return self.advance().text

    # ----------------------------------------------------------- program
    def parse_program(self) -> cast.Program:
        program = cast.Program()
        while self.tok.kind is not TokKind.EOF:
            base = self._base_type()
            pointer, name = self._declarator_head()
            if self.tok.is_op("("):
                program.functions.append(self._function(base, pointer, name))
            else:
                program.globals.extend(self._finish_var_decls(base, pointer, name))
        return program

    def _at_type(self) -> bool:
        return self.tok.is_kw(*(_BASE_TYPES.keys()), "unsigned", "void")

    def _base_type(self) -> CType:
        if self.tok.is_kw("void"):
            self.advance()
            return VOID
        unsigned = False
        if self.tok.is_kw("unsigned"):
            unsigned = True
            self.advance()
        if self.tok.is_kw(*(_BASE_TYPES.keys())):
            word = self.advance().text
            base = _BASE_TYPES[word]
            # "unsigned long" etc.; a bare "unsigned" means unsigned int
        elif unsigned:
            base = MachineType.LONG
        else:
            raise ParseError(self.tok, "expected a type")
        if unsigned:
            base = _UNSIGNED.get(base, base)
        return CType(base)

    def _declarator_head(self):
        pointer = 0
        while self.tok.is_op("*"):
            pointer += 1
            self.advance()
        name = self.expect_ident()
        return pointer, name

    def _array_suffix(self) -> Optional[int]:
        if not self.tok.is_op("["):
            return None
        self.advance()
        if self.tok.kind is not TokKind.INT:
            raise ParseError(self.tok, "array size must be an integer constant")
        size = int(self.advance().value)  # type: ignore[arg-type]
        self.expect_op("]")
        return size

    def _finish_var_decls(self, base: CType, pointer: int, name: str,
                          register: bool = False) -> List[cast.VarDecl]:
        decls = []
        array = self._array_suffix()
        decls.append(cast.VarDecl(
            name, CType(base.base, pointer, array), register, self.tok.line
        ))
        while self.tok.is_op(","):
            self.advance()
            pointer, name = self._declarator_head()
            array = self._array_suffix()
            decls.append(cast.VarDecl(
                name, CType(base.base, pointer, array), register, self.tok.line
            ))
        self.expect_op(";")
        return decls

    # ---------------------------------------------------------- function
    def _function(self, base: CType, pointer: int, name: str) -> cast.FuncDef:
        line = self.tok.line
        self.expect_op("(")
        params: List[cast.Param] = []
        if not self.tok.is_op(")"):
            if self.tok.is_kw("void") and self.peek().is_op(")"):
                self.advance()
            else:
                while True:
                    p_base = self._base_type()
                    p_pointer, p_name = self._declarator_head()
                    params.append(cast.Param(p_name, CType(p_base.base, p_pointer)))
                    if not self.tok.is_op(","):
                        break
                    self.advance()
        self.expect_op(")")
        body = self._block()
        return_type = VOID if base.is_void else CType(base.base, pointer)
        return cast.FuncDef(name, return_type, params, body, line)

    # --------------------------------------------------------- statements
    def _block(self) -> cast.Block:
        self.expect_op("{")
        block = cast.Block()
        # declarations first, C-style
        while True:
            register = False
            if self.tok.is_kw("register"):
                register = True
                self.advance()
            if self._at_type():
                base = self._base_type()
                pointer, name = self._declarator_head()
                block.decls.extend(
                    self._finish_var_decls(base, pointer, name, register)
                )
            elif register:
                raise ParseError(self.tok, "expected a type after 'register'")
            else:
                break
        while not self.tok.is_op("}"):
            block.stmts.append(self._statement())
        self.expect_op("}")
        return block

    def _statement(self) -> cast.Stmt:
        token = self.tok
        if token.is_op("{"):
            return self._block()
        if token.is_op(";"):
            self.advance()
            return cast.ExprStmt(line=token.line)
        if token.is_kw("if"):
            self.advance()
            self.expect_op("(")
            cond = self._expression()
            self.expect_op(")")
            then = self._statement()
            other = None
            if self.tok.is_kw("else"):
                self.advance()
                other = self._statement()
            return cast.If(line=token.line, cond=cond, then=then, other=other)
        if token.is_kw("while"):
            self.advance()
            self.expect_op("(")
            cond = self._expression()
            self.expect_op(")")
            return cast.While(line=token.line, cond=cond, body=self._statement())
        if token.is_kw("do"):
            self.advance()
            body = self._statement()
            if not self.tok.is_kw("while"):
                raise ParseError(self.tok, "expected 'while' after do body")
            self.advance()
            self.expect_op("(")
            cond = self._expression()
            self.expect_op(")")
            self.expect_op(";")
            return cast.DoWhile(line=token.line, body=body, cond=cond)
        if token.is_kw("for"):
            self.advance()
            self.expect_op("(")
            init = None if self.tok.is_op(";") else self._expression()
            self.expect_op(";")
            cond = None if self.tok.is_op(";") else self._expression()
            self.expect_op(";")
            step = None if self.tok.is_op(")") else self._expression()
            self.expect_op(")")
            return cast.For(line=token.line, init=init, cond=cond, step=step,
                            body=self._statement())
        if token.is_kw("return"):
            self.advance()
            value = None if self.tok.is_op(";") else self._expression()
            self.expect_op(";")
            return cast.Return(line=token.line, value=value)
        if token.is_kw("goto"):
            self.advance()
            label = self.expect_ident()
            self.expect_op(";")
            return cast.Goto(line=token.line, label=label)
        if token.is_kw("break"):
            self.advance()
            self.expect_op(";")
            return cast.Break(line=token.line)
        if token.is_kw("continue"):
            self.advance()
            self.expect_op(";")
            return cast.Continue(line=token.line)
        if token.kind is TokKind.IDENT and self.peek().is_op(":"):
            label = self.advance().text
            self.advance()  # ':'
            return cast.Labeled(line=token.line, label=label,
                                stmt=self._statement())
        expr = self._expression()
        self.expect_op(";")
        return cast.ExprStmt(line=token.line, expr=expr)

    # -------------------------------------------------------- expressions
    def _expression(self) -> cast.Expr:
        return self._assignment()

    def _assignment(self) -> cast.Expr:
        left = self._ternary()
        if self.tok.kind is TokKind.OP and self.tok.text in _ASSIGN_OPS:
            op = self.advance().text
            value = self._assignment()
            return cast.Assign(line=self.tok.line, op=op, target=left, value=value)
        return left

    def _ternary(self) -> cast.Expr:
        cond = self._binary(0)
        if self.tok.is_op("?"):
            self.advance()
            then = self._expression()
            self.expect_op(":")
            other = self._ternary()
            return cast.Ternary(line=self.tok.line, cond=cond, then=then,
                                other=other)
        return cond

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _binary(self, level: int) -> cast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._unary()
        ops = self._PRECEDENCE[level]
        left = self._binary(level + 1)
        while self.tok.is_op(*ops):
            op = self.advance().text
            right = self._binary(level + 1)
            left = cast.Binary(line=self.tok.line, op=op, left=left, right=right)
        return left

    def _unary(self) -> cast.Expr:
        token = self.tok
        if token.is_op("-", "~", "!", "&", "*"):
            self.advance()
            return cast.Unary(line=token.line, op=token.text,
                              operand=self._unary())
        if token.is_op("+"):
            self.advance()
            return self._unary()
        if token.is_op("++", "--"):
            self.advance()
            return cast.Unary(line=token.line, op=token.text + "pre",
                              operand=self._unary())
        if token.is_op("(") and self._is_cast():
            self.advance()
            base = self._base_type()
            pointer = 0
            while self.tok.is_op("*"):
                pointer += 1
                self.advance()
            self.expect_op(")")
            return cast.Cast(line=token.line,
                             ty=CType(base.base, pointer),
                             operand=self._unary())
        return self._postfix()

    def _is_cast(self) -> bool:
        token = self.peek()
        return token.is_kw(*(_BASE_TYPES.keys()), "unsigned", "void")

    def _postfix(self) -> cast.Expr:
        expr = self._primary()
        while True:
            if self.tok.is_op("["):
                self.advance()
                index = self._expression()
                self.expect_op("]")
                expr = cast.Index(line=self.tok.line, base=expr, index=index)
            elif self.tok.is_op("(") and isinstance(expr, cast.Ident):
                self.advance()
                args: List[cast.Expr] = []
                if not self.tok.is_op(")"):
                    while True:
                        args.append(self._assignment())
                        if not self.tok.is_op(","):
                            break
                        self.advance()
                self.expect_op(")")
                expr = cast.CallExpr(line=self.tok.line, callee=expr.name,
                                     args=args)
            elif self.tok.is_op("++", "--"):
                op = self.advance().text
                expr = cast.Postfix(line=self.tok.line, op=op, operand=expr)
            else:
                return expr

    def _primary(self) -> cast.Expr:
        token = self.tok
        if token.kind is TokKind.IDENT:
            self.advance()
            return cast.Ident(line=token.line, name=token.text)
        if token.kind is TokKind.INT:
            self.advance()
            return cast.IntLit(line=token.line, value=int(token.value))  # type: ignore[arg-type]
        if token.kind is TokKind.CHAR:
            self.advance()
            return cast.IntLit(line=token.line, value=int(token.value),  # type: ignore[arg-type]
                               ty=MachineType.BYTE)
        if token.kind is TokKind.FLOAT:
            self.advance()
            return cast.FloatLit(line=token.line, value=float(token.value))  # type: ignore[arg-type]
        if token.is_op("("):
            self.advance()
            expr = self._expression()
            self.expect_op(")")
            return expr
        raise ParseError(token, "expected an expression")


def parse(source: str) -> cast.Program:
    """Parse C-subset source text into an AST."""
    return Parser(source).parse_program()
