"""Lexer for the C subset ("the front ends" substrate).

The paper's code generator consumed intermediate forests from the PCC C,
Berkeley Pascal and f77 front ends; ours come from this small C-like
language, rich enough to exercise every code-generation path: scalar
types with signedness, pointers, one-dimensional arrays, register
variables, all the C operators including short-circuit and selection, and
the control statements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {
    "char", "short", "int", "long", "unsigned", "float", "double", "void",
    "register", "if", "else", "while", "for", "do", "return", "goto",
    "break", "continue",
}

# multi-character operators, longest first
_OPERATORS = [
    "<<=", ">>=",
    "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "[", "]", "{", "}", ",", ";", "?", ":",
]


class TokKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    CHAR = "char"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Tok:
    kind: TokKind
    text: str
    value: object = None
    line: int = 0

    def is_op(self, *ops: str) -> bool:
        return self.kind is TokKind.OP and self.text in ops

    def is_kw(self, *kws: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text in kws

    def __repr__(self) -> str:
        return f"{self.kind.value}:{self.text}"


class LexError(SyntaxError):
    pass


def tokenize(source: str) -> List[Tok]:
    """Tokenize C-subset source into a token list ending with EOF."""
    tokens: List[Tok] = []
    line = 1
    position = 0
    length = len(source)

    while position < length:
        ch = source[position]

        if ch == "\n":
            line += 1
            position += 1
            continue
        if ch.isspace():
            position += 1
            continue

        # comments
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end < 0:
                raise LexError(f"line {line}: unterminated comment")
            line += source.count("\n", position, end)
            position = end + 2
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end < 0 else end
            continue

        if ch.isalpha() or ch == "_":
            start = position
            while position < length and (source[position].isalnum() or source[position] == "_"):
                position += 1
            word = source[start:position]
            kind = TokKind.KEYWORD if word in KEYWORDS else TokKind.IDENT
            tokens.append(Tok(kind, word, line=line))
            continue

        if ch.isdigit() or (ch == "." and position + 1 < length and source[position + 1].isdigit()):
            start = position
            is_float = False
            if source.startswith("0x", position) or source.startswith("0X", position):
                position += 2
                while position < length and source[position] in "0123456789abcdefABCDEF":
                    position += 1
                tokens.append(Tok(TokKind.INT, source[start:position],
                                  value=int(source[start:position], 16), line=line))
                continue
            while position < length and source[position].isdigit():
                position += 1
            if position < length and source[position] == ".":
                is_float = True
                position += 1
                while position < length and source[position].isdigit():
                    position += 1
            if position < length and source[position] in "eE":
                is_float = True
                position += 1
                if position < length and source[position] in "+-":
                    position += 1
                while position < length and source[position].isdigit():
                    position += 1
            text = source[start:position]
            if is_float:
                tokens.append(Tok(TokKind.FLOAT, text, value=float(text), line=line))
            else:
                tokens.append(Tok(TokKind.INT, text, value=int(text), line=line))
            continue

        if ch == "'":
            end = position + 1
            if end < length and source[end] == "\\":
                end += 1
            end += 1
            if end >= length or source[end] != "'":
                raise LexError(f"line {line}: bad character constant")
            body = source[position + 1:end]
            value = _char_value(body, line)
            tokens.append(Tok(TokKind.CHAR, source[position:end + 1],
                              value=value, line=line))
            position = end + 1
            continue

        for operator in _OPERATORS:
            if source.startswith(operator, position):
                tokens.append(Tok(TokKind.OP, operator, line=line))
                position += len(operator)
                break
        else:
            raise LexError(f"line {line}: unexpected character {ch!r}")

    tokens.append(Tok(TokKind.EOF, "", line=line))
    return tokens


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39}


def _char_value(body: str, line: int) -> int:
    if body.startswith("\\"):
        try:
            return _ESCAPES[body[1]]
        except (KeyError, IndexError):
            raise LexError(f"line {line}: bad escape {body!r}") from None
    if len(body) != 1:
        raise LexError(f"line {line}: bad character constant {body!r}")
    return ord(body)
