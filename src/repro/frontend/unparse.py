"""AST-to-source printer for the C subset.

The differential fuzzer's minimizer (:mod:`repro.fuzz.minimize`) edits
programs as :mod:`repro.frontend.cast` trees — dropping statements,
replacing expressions with their operands — and every candidate must go
back through the *real* front end, because the bug being chased may live
in parsing or lowering.  This module closes that loop: ``unparse(parse(s))``
is a semantic identity (token-for-token identity is not a goal; every
subexpression is parenthesized so operator precedence never bites).
"""

from __future__ import annotations

from typing import List

from ..ir.types import MachineType
from . import cast

_TYPE_NAMES = {
    MachineType.BYTE: "char",
    MachineType.WORD: "short",
    MachineType.LONG: "int",
    MachineType.QUAD: "long",
    MachineType.FLOAT: "float",
    MachineType.DOUBLE: "double",
    MachineType.UBYTE: "unsigned char",
    MachineType.UWORD: "unsigned short",
    MachineType.ULONG: "unsigned int",
    MachineType.UQUAD: "unsigned long",
}


def type_text(ty: cast.CType) -> str:
    """The declaration-position spelling of *ty* (without the name)."""
    if ty.is_void:
        return "void"
    return _TYPE_NAMES[ty.base] + "*" * ty.pointer


def declarator(name: str, ty: cast.CType) -> str:
    base = "void" if ty.is_void else _TYPE_NAMES[ty.base]
    text = base + " " + "*" * ty.pointer + name
    if ty.array is not None:
        text += f"[{ty.array}]"
    return text


# --------------------------------------------------------------- expressions
def expr_text(node: cast.Expr) -> str:
    if isinstance(node, cast.IntLit):
        if (node.ty is MachineType.BYTE and 32 <= node.value < 127
                and chr(node.value) not in "'\\"):
            return f"'{chr(node.value)}'"
        return str(node.value)
    if isinstance(node, cast.FloatLit):
        return repr(node.value)
    if isinstance(node, cast.Ident):
        return node.name
    if isinstance(node, cast.Unary):
        op = node.op
        if op.endswith("pre"):          # ++pre / --pre
            return f"({op[:-3]}{expr_text(node.operand)})"
        return f"({op}{expr_text(node.operand)})"
    if isinstance(node, cast.Postfix):
        return f"({expr_text(node.operand)}{node.op})"
    if isinstance(node, cast.Binary):
        return f"({expr_text(node.left)} {node.op} {expr_text(node.right)})"
    if isinstance(node, cast.Assign):
        return f"{expr_text(node.target)} {node.op} {expr_text(node.value)}"
    if isinstance(node, cast.Ternary):
        return (f"({expr_text(node.cond)} ? {expr_text(node.then)} : "
                f"{expr_text(node.other)})")
    if isinstance(node, cast.Index):
        return f"{expr_text(node.base)}[{expr_text(node.index)}]"
    if isinstance(node, cast.CallExpr):
        args = ", ".join(expr_text(a) for a in node.args)
        return f"{node.callee}({args})"
    if isinstance(node, cast.Cast):
        return f"(({type_text(node.ty)}) {expr_text(node.operand)})"
    raise TypeError(f"cannot unparse expression {type(node).__name__}")


# ---------------------------------------------------------------- statements
def _stmt_lines(node: cast.Stmt, indent: int) -> List[str]:
    pad = "    " * indent
    if isinstance(node, cast.Block):
        lines = [pad + "{"]
        for decl in node.decls:
            prefix = "register " if decl.register else ""
            lines.append(f"{pad}    {prefix}{declarator(decl.name, decl.ty)};")
        for stmt in node.stmts:
            lines.extend(_stmt_lines(stmt, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(node, cast.ExprStmt):
        if node.expr is None:
            return [pad + ";"]
        return [f"{pad}{expr_text(node.expr)};"]
    if isinstance(node, cast.If):
        lines = [f"{pad}if ({expr_text(node.cond)})"]
        lines.extend(_braced(node.then, indent))
        if node.other is not None:
            lines.append(pad + "else")
            lines.extend(_braced(node.other, indent))
        return lines
    if isinstance(node, cast.While):
        return ([f"{pad}while ({expr_text(node.cond)})"]
                + _braced(node.body, indent))
    if isinstance(node, cast.DoWhile):
        return ([pad + "do"] + _braced(node.body, indent)
                + [f"{pad}while ({expr_text(node.cond)});"])
    if isinstance(node, cast.For):
        init = expr_text(node.init) if node.init is not None else ""
        cond = expr_text(node.cond) if node.cond is not None else ""
        step = expr_text(node.step) if node.step is not None else ""
        return ([f"{pad}for ({init}; {cond}; {step})"]
                + _braced(node.body, indent))
    if isinstance(node, cast.Return):
        if node.value is None:
            return [pad + "return;"]
        return [f"{pad}return {expr_text(node.value)};"]
    if isinstance(node, cast.Goto):
        return [f"{pad}goto {node.label};"]
    if isinstance(node, cast.Labeled):
        return [f"{pad}{node.label}:"] + _stmt_lines(node.stmt, indent)
    if isinstance(node, cast.Break):
        return [pad + "break;"]
    if isinstance(node, cast.Continue):
        return [pad + "continue;"]
    raise TypeError(f"cannot unparse statement {type(node).__name__}")


def _braced(node: cast.Stmt, indent: int) -> List[str]:
    """A statement in a control-flow body, always wrapped in a block so
    the minimizer can splice without dangling-else surprises."""
    if isinstance(node, cast.Block):
        return _stmt_lines(node, indent)
    block = cast.Block(stmts=[node])
    return _stmt_lines(block, indent)


# ------------------------------------------------------------------ program
def unparse(program: cast.Program) -> str:
    """Render a :class:`~repro.frontend.cast.Program` back to C source."""
    lines: List[str] = []
    for decl in program.globals:
        lines.append(f"{declarator(decl.name, decl.ty)};")
    if program.globals:
        lines.append("")
    for func in program.functions:
        params = ", ".join(
            declarator(p.name, p.ty) for p in func.params
        ) or "void"
        ret = type_text(func.return_type)
        lines.append(f"{ret} {func.name}({params})")
        lines.extend(_stmt_lines(func.body, 0))
        lines.append("")
    return "\n".join(lines)
