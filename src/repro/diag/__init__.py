"""Structured diagnostics for the resilient compilation pipeline.

See :mod:`repro.diag.codes` for the stable code registry and
:mod:`repro.diag.diagnostics` for the record/sink machinery.
"""

from . import codes
from .codes import ERROR, NOTE, WARNING, describe, default_severity
from .diagnostics import Diagnostic, DiagnosticSink

__all__ = [
    "codes",
    "Diagnostic",
    "DiagnosticSink",
    "ERROR",
    "WARNING",
    "NOTE",
    "describe",
    "default_severity",
]
