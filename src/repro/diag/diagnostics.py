"""Structured diagnostics: records and the per-compile sink.

The matcher's historical failure mode was an unstructured exception that
aborted the whole compile.  A :class:`Diagnostic` instead captures one
event — a block, a cache quarantine, a recovery rung, a dead worker —
with a stable code (:mod:`repro.diag.codes`), a severity, the function
it happened in, and a JSON-able ``context`` dict (matcher state, stack
snapshot, lookahead, cache paths...).  A :class:`DiagnosticSink`
accumulates them across one ``compile_program`` run; the CLI renders the
sink human-readable or as JSON (``--diag-json``).

Diagnostics are picklable by construction (dataclass of primitives), so
process-pool workers ship theirs back to the parent sink unchanged.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..obs.metrics import REGISTRY as METRICS
from .codes import ERROR, NOTE, WARNING, default_severity, severity_rank


def _jsonable(value: Any) -> Any:
    """Coerce *value* into something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


@dataclass
class Diagnostic:
    """One structured pipeline event."""

    code: str
    message: str
    severity: str = ""
    function: Optional[str] = None
    context: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.severity:
            self.severity = default_severity(self.code)
        self.context = {k: _jsonable(v) for k, v in self.context.items()}

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def format(self) -> str:
        """One human-readable line, context keys appended compactly."""
        where = f" [{self.function}]" if self.function else ""
        line = f"{self.severity}: {self.code}{where}: {self.message}"
        if self.context:
            detail = ", ".join(
                f"{key}={value}" for key, value in sorted(self.context.items())
                if not isinstance(value, (list, dict))
            )
            if detail:
                line += f" ({detail})"
        return line


class DiagnosticSink:
    """Thread-safe collector for one compilation's diagnostics.

    Thread workers of the parallel driver append concurrently; process
    workers return their diagnostics by value and the parent extends the
    sink, so one lock around the list suffices.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[Diagnostic] = []

    # ---------------------------------------------------------- recording
    def add(
        self,
        code: str,
        message: str,
        severity: str = "",
        function: Optional[str] = None,
        **context: Any,
    ) -> Diagnostic:
        record = Diagnostic(
            code=code, message=message, severity=severity,
            function=function, context=context,
        )
        with self._lock:
            self._records.append(record)
        METRICS.inc(f"diag.{record.severity}")
        return record

    def extend(self, records: List[Diagnostic]) -> None:
        with self._lock:
            self._records.extend(records)
        if METRICS.enabled:
            for record in records:
                METRICS.inc(f"diag.{record.severity}")

    # ------------------------------------------------------------ queries
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.records())

    def records(self) -> List[Diagnostic]:
        with self._lock:
            return list(self._records)

    @property
    def errors(self) -> List[Diagnostic]:
        return [r for r in self.records() if r.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [r for r in self.records() if r.severity == WARNING]

    @property
    def notes(self) -> List[Diagnostic]:
        return [r for r in self.records() if r.severity == NOTE]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [r for r in self.records() if r.code == code]

    def has(self, code: str) -> bool:
        return any(r.code == code for r in self.records())

    @property
    def ok(self) -> bool:
        """True when nothing error-severity was recorded."""
        return not self.errors

    # ---------------------------------------------------------- rendering
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records():
            out[record.code] = out.get(record.code, 0) + 1
        return out

    def summary_line(self) -> str:
        """The CLI's one-line roll-up, worst severity first."""
        records = self.records()
        if not records:
            return "diagnostics: none"
        parts = [
            f"{code}x{count}" for code, count in sorted(
                self.counts().items(),
                key=lambda kv: (-severity_rank(default_severity(kv[0])), kv[0]),
            )
        ]
        errors = sum(1 for r in records if r.severity == ERROR)
        return (
            f"diagnostics: {len(records)} recorded, {errors} error(s): "
            + ", ".join(parts)
        )

    def format_human(self) -> str:
        records = sorted(
            self.records(), key=lambda r: -severity_rank(r.severity)
        )
        return "\n".join(record.format() for record in records)

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "diagnostics": [record.to_dict() for record in self.records()],
            "counts": self.counts(),
            "errors": len(self.errors),
            "ok": self.ok,
        }
        return json.dumps(payload, indent=indent, sort_keys=True)
