"""The stable diagnostic-code registry.

Every failure the pipeline can survive — and every recovery it performs —
is named by a short, stable code so that logs, tests and the chaos
harness can assert on *which* failure happened rather than on message
text.  Codes are grouped by prefix:

``GG-*``
    pattern-matcher failures, mirroring the paper's blocking taxonomy
    (section 6.2.2): syntactic blocks, semantic blocks, reduction loops,
    corrupted packed tables.
``RECOVER-*``
    one entry per rung of the runtime recovery ladder, the dynamic
    analogue of the paper's static bridge-production and default-list
    repairs.
``CACHE-*``
    persistent table-cache integrity events.
``WORKER-*``
    parallel-driver containment events.
``SERVER-*``
    compile-service admission control and self-healing: queue-full
    backpressure, expired request deadlines, supervised-worker crash
    and retry events, circuit-breaker sheds, and graceful-drain
    rejections.
``FN-*`` / ``FRONTEND-*``
    per-function and whole-program terminal failures.

Adding a code means adding it to :data:`REGISTRY`; the severity given
there is the *default* — a Diagnostic may override it (e.g. a recovery
note escalates to a warning when it happened during a production run).
"""

from __future__ import annotations

from typing import Dict, Tuple

# Severities, mildest first.
NOTE = "note"
WARNING = "warning"
ERROR = "error"

_SEVERITY_RANK = {NOTE: 0, WARNING: 1, ERROR: 2}

# ------------------------------------------------------------- matcher
GG_BLOCK_SYN = "GG-BLOCK-SYN"
GG_BLOCK_SEM = "GG-BLOCK-SEM"
GG_REDUCE_LOOP = "GG-REDUCE-LOOP"
GG_SEMANTIC = "GG-SEMANTIC"
GG_TABLE_CORRUPT = "GG-TABLE-CORRUPT"

# ------------------------------------------------------------ recovery
RECOVER_PACKED = "RECOVER-PACKED"
RECOVER_DICT = "RECOVER-DICT"
RECOVER_FORCE = "RECOVER-FORCE"
RECOVER_PCC = "RECOVER-PCC"

# --------------------------------------------------------------- cache
CACHE_CORRUPT = "CACHE-CORRUPT"
CACHE_RETRY = "CACHE-RETRY"

# ------------------------------------------------------------- drivers
WORKER_TIMEOUT = "WORKER-TIMEOUT"
WORKER_CRASH = "WORKER-CRASH"
WORKER_INIT = "WORKER-INIT"
FN_FAILED = "FN-FAILED"
FRONTEND_ERROR = "FRONTEND-ERROR"
ENGINE_UNKNOWN = "ENGINE-UNKNOWN"

# ------------------------------------------------------------- service
SERVER_OVERLOAD = "SERVER-OVERLOAD"
SERVER_DEADLINE = "SERVER-DEADLINE"
SERVER_WORKER_CRASH = "SERVER-WORKER-CRASH"
SERVER_RETRY = "SERVER-RETRY"
SERVER_CIRCUIT_OPEN = "SERVER-CIRCUIT-OPEN"
SERVER_SHUTDOWN = "SERVER-SHUTDOWN"

#: code -> (default severity, one-line description)
REGISTRY: Dict[str, Tuple[str, str]] = {
    GG_BLOCK_SYN: (
        ERROR,
        "syntactic block: the matcher hit the error action on a "
        "well-formed tree (section 6.2.2)",
    ),
    GG_BLOCK_SEM: (
        ERROR,
        "semantic block: a reduction completed but no goto (or no viable "
        "tied production) could consume it",
    ),
    GG_REDUCE_LOOP: (
        ERROR,
        "chain reductions cycled past the dynamic loop limit",
    ),
    GG_SEMANTIC: (
        ERROR,
        "an emitting reduction could not be realised by the semantics",
    ),
    GG_TABLE_CORRUPT: (
        ERROR,
        "packed runtime tables failed their integrity checksum",
    ),
    RECOVER_PACKED: (
        NOTE,
        "function recompiled successfully on the packed interpreter "
        "after the compiled matcher failed",
    ),
    RECOVER_DICT: (
        NOTE,
        "function recompiled successfully on the dict-table matcher",
    ),
    RECOVER_FORCE: (
        WARNING,
        "function recompiled after forced operand hoisting (the runtime "
        "analogue of a bridge production)",
    ),
    RECOVER_PCC: (
        WARNING,
        "function degraded to the PCC baseline backend",
    ),
    CACHE_CORRUPT: (
        WARNING,
        "corrupt or truncated table-cache entry quarantined; cold build",
    ),
    CACHE_RETRY: (
        NOTE,
        "table-cache store retried after a racing writer or I/O error",
    ),
    WORKER_TIMEOUT: (
        ERROR,
        "a parallel compile worker exceeded the per-function timeout",
    ),
    WORKER_CRASH: (
        ERROR,
        "a parallel compile worker died; remaining functions were "
        "recompiled serially",
    ),
    WORKER_INIT: (
        ERROR,
        "the worker-pool initializer failed (table load or build); the "
        "program was compiled serially in the parent",
    ),
    FN_FAILED: (
        ERROR,
        "a function failed every rung of the recovery ladder",
    ),
    FRONTEND_ERROR: (
        ERROR,
        "the front end rejected the program before code generation",
    ),
    ENGINE_UNKNOWN: (
        WARNING,
        "the REPRO_MATCHER environment variable named an unknown "
        "matcher engine; it was ignored and the default engine used",
    ),
    SERVER_OVERLOAD: (
        WARNING,
        "the compile service's admission queue was full; the request "
        "was rejected immediately with backpressure instead of queued",
    ),
    SERVER_DEADLINE: (
        ERROR,
        "the request's deadline expired before its compile finished; "
        "queued work was cancelled, running work was abandoned",
    ),
    SERVER_WORKER_CRASH: (
        ERROR,
        "a supervised compile worker died or hung mid-request; the "
        "worker was restarted and the request re-dispatched when "
        "retries remained",
    ),
    SERVER_RETRY: (
        NOTE,
        "the request was re-dispatched to a healthy worker after its "
        "first worker failed (idempotent under the content-addressed "
        "result key)",
    ),
    SERVER_CIRCUIT_OPEN: (
        WARNING,
        "the circuit breaker is open for this failure class; the "
        "request was shed immediately instead of queued onto a failing "
        "backend",
    ),
    SERVER_SHUTDOWN: (
        WARNING,
        "the service is draining: the request was rejected or its "
        "in-flight compile abandoned so the response could be flushed "
        "before the connection closed",
    ),
}


def default_severity(code: str) -> str:
    """The registered severity for *code* (ERROR when unregistered)."""
    entry = REGISTRY.get(code)
    return entry[0] if entry else ERROR


def describe(code: str) -> str:
    entry = REGISTRY.get(code)
    return entry[1] if entry else "unregistered diagnostic code"


def severity_rank(severity: str) -> int:
    """Orderable rank; unknown severities sort as errors."""
    return _SEVERITY_RANK.get(severity, _SEVERITY_RANK[ERROR])
