"""Operand shape predicates for the PCC-style template matcher.

The Portable C Compiler's second pass matches tree nodes against
hand-written templates whose operand positions carry *shape* masks
(``SAREG``, ``SNAME``, ``SCON``, ``SOREG`` ...).  We reproduce that
machinery: a :class:`Shape` is a named predicate over IR nodes, and
templates request a set of acceptable shapes per operand.
"""

from __future__ import annotations

import enum
from typing import FrozenSet

from ..ir.ops import Op
from ..ir.tree import Node


class Shape(enum.Flag):
    """PCC operand shapes (a Flag so templates can OR them)."""

    NONE = 0
    SAREG = enum.auto()   # value in an allocatable register
    SNAME = enum.auto()   # directly addressable: global or temporary
    SCON = enum.auto()    # integer/float constant
    SOREG = enum.auto()   # offset(register) memory reference
    SZERO = enum.auto()   # the constant zero
    SONE = enum.auto()    # the constant one
    SANY = enum.auto()    # anything already evaluated

    def __contains__(self, other: "Shape") -> bool:
        return bool(self & other)


#: the catch-all operand mask used by most arithmetic templates
SEVAL = Shape.SAREG | Shape.SNAME | Shape.SCON | Shape.SOREG


def node_shape(node: Node) -> Shape:
    """Classify an IR node into the shapes it satisfies *as it stands*
    (before any rewriting), the analogue of PCC's ``tshape``."""
    op = node.op
    if op in (Op.REG, Op.DREG):
        return Shape.SAREG | Shape.SANY
    if op in (Op.NAME, Op.TEMP):
        return Shape.SNAME | Shape.SANY
    if op is Op.CONST:
        shape = Shape.SCON | Shape.SANY
        if node.value == 0:
            shape |= Shape.SZERO
        if node.value == 1:
            shape |= Shape.SONE
        return shape
    if op is Op.ADDROF and node.kids and node.kids[0].op is Op.NAME:
        return Shape.SCON | Shape.SANY  # $_symbol immediate
    if op is Op.INDIR:
        address = node.kids[0]
        if address.op in (Op.REG, Op.DREG):
            return Shape.SOREG | Shape.SANY
        if (
            address.op is Op.PLUS
            and address.kids[0].op is Op.CONST
            and address.kids[1].op in (Op.REG, Op.DREG)
        ):
            return Shape.SOREG | Shape.SANY
        if (
            address.op is Op.PLUS
            and address.kids[1].op is Op.CONST
            and address.kids[0].op in (Op.REG, Op.DREG)
        ):
            return Shape.SOREG | Shape.SANY
        return Shape.SANY
    return Shape.SANY


def matches(node: Node, wanted: Shape) -> bool:
    """Does *node* currently satisfy one of the wanted shapes?"""
    if wanted is Shape.SANY:
        return True
    return bool(node_shape(node) & wanted)


def is_addressable(node: Node) -> bool:
    """Can the assembler reference this node as one operand?"""
    return bool(node_shape(node) & (Shape.SAREG | Shape.SNAME | Shape.SCON | Shape.SOREG))
