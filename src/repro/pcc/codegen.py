"""The PCC-style second pass: an ad hoc, hand-written template matcher.

This is the baseline the paper compares against: "assembly code ...
driven by a somewhat ad hoc pattern matcher using patterns taken from a
hand generated table" (section 2).  The structure follows the real PCC:
a goal-directed recursive walk (``order``/``match`` in PCC terms) that
either finds a template whose operand shapes match the tree as it stands,
or rewrites the tree (evaluates an operand into a register) and retries.

Both code generators share the phase-1a/1b front lowering so the
comparison isolates the *instruction selection* strategies, exactly as in
the paper where both consumed the same intermediate forests.  Evaluation
ordering uses classic Sethi-Ullman numbering (PCC's ``sucomp``).

Deliberate fidelity to PCC's VAX templates of the era:

* two- and three-operand arithmetic, including memory destinations;
* ``inc``/``dec``/``clr``/``tst`` special templates;
* NO displacement-indexed addressing, NO autoincrement, NO ``moval``
  address arithmetic — index computations go through explicit multiplies
  and adds.  These are the spots where the table-driven generator's
  maximal munch wins, producing the paper's "as good or better in almost
  all cases".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..codegen.controlflow import make_control_flow_explicit
from ..codegen.expand import expand_operators
from ..codegen.ordering import su_number
from ..codegen.output import AssemblyUnit
from ..ir.ops import Cond, Op
from ..ir.tree import Forest, LabelDef, Node
from ..ir.types import MachineType
from ..vax.machine import VAX, VaxMachine
from .shapes import Shape, is_addressable, node_shape

_BRANCH = {cond: f"j{cond.value}" for cond in Cond}

_OP3 = {
    Op.PLUS: "add", Op.MINUS: "sub", Op.MUL: "mul", Op.DIV: "div",
    Op.OR: "bis", Op.XOR: "xor",
}


class PccError(RuntimeError):
    """The ad hoc matcher ran out of rewrites — PCC's famous
    "compiler error: no match for op ..." failure mode."""


@dataclass
class PccResult:
    unit: AssemblyUnit
    seconds: float
    statements: int = 0

    @property
    def assembly(self) -> str:
        return self.unit.text()

    @property
    def instruction_count(self) -> int:
        return self.unit.instruction_count


class PccCodeGenerator:
    """A fresh instance per routine keeps register state simple."""

    def __init__(self, machine: VaxMachine = VAX) -> None:
        self.machine = machine
        self.unit: AssemblyUnit = AssemblyUnit(name="")
        self._free: List[str] = []
        self._lru: List[str] = []
        self._temp_counter = 0
        # phase-1 (Reghint) reservations: register -> remaining uses
        self._reserved: Dict[str, int] = {}
        self._pending_release: List[str] = []

    # --------------------------------------------------------------- API
    def compile(self, forest: Forest) -> PccResult:
        started = time.perf_counter()
        work = forest.clone()
        work = make_control_flow_explicit(work, self.machine)
        work = expand_operators(work)

        from ..codegen.driver import assign_temp_slots

        assign_temp_slots(work)
        self.unit = AssemblyUnit(name=forest.name)
        self._free = list(self.machine.allocatable)
        self._lru = []
        statements = 0
        for item in work.items:
            if isinstance(item, LabelDef):
                self.unit.body_lines.append(f"{item.name}:")
                continue
            statements += 1
            self._statement(item)
            # expression boundary: scratch dies, but phase-1 reservations
            # holding truth values across statements survive
            for register in self._pending_release:
                self._reserved.pop(register, None)
            self._pending_release.clear()
            self._free = [r for r in self.machine.allocatable
                          if r not in self._reserved]
            self._lru = []
        return PccResult(
            unit=self.unit,
            seconds=time.perf_counter() - started,
            statements=statements,
        )

    # ------------------------------------------------------------ emit
    def _emit(self, line: str) -> None:
        self.unit.body_lines.append(f"\t{line}")

    # -------------------------------------------------------- registers
    def _alloc(self, avoid: Tuple[str, ...] = ()) -> str:
        for register in self._free:
            if register not in avoid:
                self._free.remove(register)
                self._lru.append(register)
                return register
        raise PccError("out of registers (sucomp should prevent this)")

    def _free_reg(self, operand: str) -> None:
        register = operand.strip("()")
        if register in self._lru:
            self._lru.remove(register)
            self._free.insert(0, register)
            self._free.sort(key=self.machine.allocatable.index)
        elif register in self._pending_release:
            # a phase-1 reservation whose promised uses are all spent:
            # hand it back mid-statement.  Waiting for the statement
            # boundary starves deep expressions — three live Reghints
            # would leave only three scratch registers for the whole tree.
            self._pending_release.remove(register)
            self._reserved.pop(register, None)
            self._free.append(register)
            self._free.sort(key=self.machine.allocatable.index)

    def _is_scratch(self, operand: str) -> bool:
        return operand in self._lru

    # -------------------------------------------------------- statements
    def _statement(self, tree: Node) -> None:
        op = tree.op
        if op in (Op.ASSIGN, Op.RASSIGN):
            dest, src = (tree.kids if op is Op.ASSIGN else reversed(tree.kids))
            self._assign(dest, src, tree.ty)
        elif op is Op.CBRANCH:
            self._cbranch(tree)
        elif op is Op.JUMP:
            self._emit(f"jbr {tree.kids[0].value}")
        elif op is Op.ARG:
            operand = self._expr(tree.kids[0])
            if tree.ty.is_float:
                self._emit(f"mov{tree.ty.suffix} {operand},-(sp)")
            else:
                self._emit(f"pushl {operand}")
            self._free_reg(operand)
        elif op is Op.CALL:
            argc = tree.kids[0].value if tree.kids else 0
            self._emit(f"calls ${argc},_{tree.value}")
        elif op is Op.RETURN:
            operand = self._expr(tree.kids[0])
            if operand != "r0":
                self._emit(f"mov{tree.ty.suffix} {operand},r0")
            self._emit("ret")
        elif op is Op.EXPR:
            if not tree.kids:
                return
            operand = self._expr(tree.kids[0])
            self._free_reg(operand)
        elif op is Op.REGHINT:
            register = str(tree.kids[0].value)
            uses = tree.value if isinstance(tree.value, int) and tree.value > 0 else 1
            self._reserved[register] = uses
            if register in self._free:
                self._free.remove(register)
        else:
            raise PccError(f"no match for statement op {op.name}")

    def _assign(self, dest: Node, src: Node, ty: MachineType) -> None:
        # PCC has no autoincrement templates: expand *p++ = v into a
        # store through (rN) followed by an explicit pointer bump
        post_bump = None
        if dest.op is Op.INDIR and dest.kids[0].op in (Op.POSTINC, Op.PREDEC):
            inner = dest.kids[0]
            register = str(inner.kids[0].value)
            step = inner.kids[1].value
            if inner.op is Op.PREDEC:
                self._emit(f"subl2 ${step},{register}")
            else:
                post_bump = f"addl2 ${step},{register}"
            dest = Node(Op.INDIR, dest.ty,
                        [Node(Op.DREG, MachineType.LONG, value=register)])
        self._assign_inner(dest, src, ty)
        if post_bump is not None:
            self._emit(post_bump)

    def _assign_inner(self, dest: Node, src: Node, ty: MachineType) -> None:
        suffix = ty.suffix

        if src.op is Op.CALL:
            # Emit the call before rendering the destination: condensing
            # a computed destination loads an address register, and the
            # callee may clobber any allocatable register.  r0 carries
            # the return value while the address forms, so it is
            # withheld from the scratch pool for the duration.
            argc = src.kids[0].value if src.kids else 0
            self._emit(f"calls ${argc},_{src.value}")
            had_r0 = "r0" in self._free
            if had_r0:
                self._free.remove("r0")
            dest_text = self._lvalue(dest)
            if had_r0:
                self._free.insert(0, "r0")
                self._free.sort(key=self.machine.allocatable.index)
            self._emit(f"mov{suffix} r0,{dest_text}")
            return

        dest_text = self._lvalue(dest)

        # template: op3 directly into memory when both operands addressable
        if src.op in _OP3 and src.ty.suffix == suffix:
            left, right = src.kids
            if (
                is_addressable(left) and is_addressable(right)
                and left.ty.suffix == suffix and right.ty.suffix == suffix
            ):
                l_text = self._operand(left)
                r_text = self._operand(right)
                # inc/dec/2-op special templates first (PCC had these)
                if src.op is Op.PLUS and l_text == "$1" and r_text == dest_text:
                    self._emit(f"inc{suffix} {dest_text}")
                elif src.op is Op.PLUS and r_text == "$1" and l_text == dest_text:
                    self._emit(f"inc{suffix} {dest_text}")
                elif src.op is Op.MINUS and r_text == "$1" and l_text == dest_text:
                    self._emit(f"dec{suffix} {dest_text}")
                elif src.op in (Op.PLUS, Op.MUL, Op.OR, Op.XOR) and r_text == dest_text:
                    self._two_op(src.op, suffix, l_text, dest_text)
                elif src.op in (Op.PLUS, Op.MUL, Op.OR, Op.XOR, Op.MINUS, Op.DIV) \
                        and l_text == dest_text:
                    self._two_op(src.op, suffix, r_text, dest_text)
                else:
                    self._three_op(src.op, suffix, l_text, r_text, dest_text)
                self._free_reg(l_text)
                self._free_reg(r_text)
                return

        operand = self._expr(src, want=ty)
        if operand == dest_text:
            return
        if src.op is Op.CONST and src.value == 0:
            self._emit(f"clr{suffix} {dest_text}")
        elif src.op is Op.PLUS and self._inc_template(src, dest_text, suffix):
            pass
        else:
            self._emit(f"mov{suffix} {operand},{dest_text}")
        self._free_reg(operand)

    def _inc_template(self, src: Node, dest_text: str, suffix: str) -> bool:
        """PCC's inc/dec special templates for a = a +/- 1."""
        left, right = src.kids
        if (
            left.op is Op.CONST and left.value == 1
            and self._operand_if_addressable(right) == dest_text
        ):
            self._emit(f"inc{suffix} {dest_text}")
            return True
        return False

    def _cbranch(self, tree: Node) -> None:
        test, label = tree.kids
        cond = test.cond or Cond.NE
        left, right = test.kids
        if test.op is Op.RCMP:
            left, right = right, left
        suffix = test.ty.suffix
        l_text = self._expr(left, want=test.ty)
        if right.op is Op.CONST and right.value == 0:
            self._emit(f"tst{suffix} {l_text}")
        else:
            r_text = self._expr(right, want=test.ty)
            self._emit(f"cmp{suffix} {l_text},{r_text}")
            self._free_reg(r_text)
        self._free_reg(l_text)
        self._emit(f"{_BRANCH[cond]} {label.value}")

    # ------------------------------------------------------- expressions
    def _expr(self, node: Node, want: Optional[MachineType] = None) -> str:
        """Evaluate *node*, returning the assembler operand holding it,
        widened to *want* when the context needs a wider datum."""
        text = self._expr_raw(node, want)
        if (
            want is not None
            and node.ty.kind is want.kind
            and node.ty.size < want.size
            and node.op is not Op.CONST  # immediates extend for free
        ):
            return self._widen(text, node.ty, want)
        return text

    def _expr_raw(self, node: Node, want: Optional[MachineType] = None) -> str:
        """The rewrite loop: if the node is addressable, use it in place;
        otherwise compute it (operands first, Sethi-Ullman heavier side
        first) into a register."""
        text = self._operand_if_addressable(node)
        if text is not None:
            return text

        op = node.op
        suffix = node.ty.suffix

        if op is Op.INDIR:
            inner = node.kids[0]
            if inner.op in (Op.POSTINC, Op.PREDEC):
                # expand the autoincrement read: load, then bump
                register = str(inner.kids[0].value)
                step = inner.kids[1].value
                if inner.op is Op.PREDEC:
                    self._emit(f"subl2 ${step},{register}")
                scratch = self._alloc()
                self._emit(f"mov{suffix} ({register}),{scratch}")
                if inner.op is Op.POSTINC:
                    self._emit(f"addl2 ${step},{register}")
                return scratch
            address = self._expr(inner)
            register = self._to_register(address, MachineType.LONG)
            return f"({register})"

        if op is Op.CONV:
            inner = node.kids[0]
            source = self._expr(inner)
            dest = self._alloc()
            self._emit(f"cvt{inner.ty.suffix}{suffix} {source},{dest}")
            self._free_reg(source)
            return dest

        if op in (Op.NEG, Op.COMPL):
            source = self._expr(node.kids[0])
            dest = self._alloc()
            mnemonic = "mneg" if op is Op.NEG else "mcom"
            self._emit(f"{mnemonic}{suffix} {source},{dest}")
            self._free_reg(source)
            return dest

        if op in _OP3 or op in (Op.RMINUS, Op.RDIV):
            return self._binary(node)

        if op in (Op.LSH, Op.RSH):
            return self._shift(node)

        if op is Op.MOD:
            return self._mod(node)

        if op is Op.AND:
            return self._and(node)

        if op in (Op.ASSIGN, Op.RASSIGN):
            dest, src = (node.kids if op is Op.ASSIGN else reversed(node.kids))
            self._assign(dest, src, node.ty)
            return self._lvalue(dest)

        raise PccError(f"no match for op {op.name}")

    def _binary(self, node: Node) -> str:
        op = node.op
        left, right = node.kids
        if op in (Op.RMINUS, Op.RDIV):
            op = op.unreversed
            left, right = right, left
        # sucomp: evaluate the register-hungrier side first
        if su_number(right) > su_number(left):
            r_text = self._expr(right, want=node.ty)
            l_text = self._expr(left, want=node.ty)
        else:
            l_text = self._expr(left, want=node.ty)
            r_text = self._expr(right, want=node.ty)
        suffix = node.ty.suffix

        if node.ty.is_integer and not node.ty.signed and op is Op.DIV:
            return self._unsigned_div(l_text, r_text)

        # two-operand template when one side already sits in a scratch reg
        if self._is_scratch(l_text) and op in (Op.PLUS, Op.MUL, Op.OR, Op.XOR):
            self._two_op(op, suffix, r_text, l_text)
            self._free_reg(r_text)
            return l_text
        if self._is_scratch(l_text) and op in (Op.MINUS, Op.DIV):
            self._two_op(op, suffix, r_text, l_text)
            self._free_reg(r_text)
            return l_text
        if self._is_scratch(r_text) and op in (Op.PLUS, Op.MUL, Op.OR, Op.XOR):
            self._two_op(op, suffix, l_text, r_text)
            self._free_reg(l_text)
            return r_text

        dest = self._alloc()
        self._three_op(op, suffix, l_text, r_text, dest)
        self._free_reg(l_text)
        self._free_reg(r_text)
        return dest

    def _three_op(self, op: Op, suffix: str, left: str, right: str, dest: str) -> None:
        base = _OP3[op]
        if op in (Op.MINUS, Op.DIV):
            self._emit(f"{base}{suffix}3 {right},{left},{dest}")
        else:
            self._emit(f"{base}{suffix}3 {left},{right},{dest}")

    def _two_op(self, op: Op, suffix: str, source: str, dest: str) -> None:
        base = _OP3[op]
        self._emit(f"{base}{suffix}2 {source},{dest}")

    def _shift(self, node: Node) -> str:
        source = self._expr(node.kids[0], want=MachineType.LONG)
        count = node.kids[1]
        dest = self._alloc()
        if count.op is Op.CONST:
            value = count.value if node.op is Op.LSH else -count.value
            self._emit(f"ashl ${value},{source},{dest}")
        else:
            count_text = self._expr(count)
            if node.op is Op.RSH:
                negated = self._alloc()
                self._emit(f"mnegl {count_text},{negated}")
                self._free_reg(count_text)
                count_text = negated
            self._emit(f"ashl {count_text},{source},{dest}")
            self._free_reg(count_text)
        self._free_reg(source)
        return dest

    def _mod(self, node: Node) -> str:
        left = self._expr(node.kids[0], want=MachineType.LONG)
        right = self._expr(node.kids[1], want=MachineType.LONG)
        if not node.ty.signed:
            return self._library_call("_urem", left, right)
        # PCC emitted the div/mul/sub expansion for %
        quotient = self._alloc()
        self._emit(f"divl3 {right},{left},{quotient}")
        self._emit(f"mull2 {right},{quotient}")
        dest = self._alloc()
        self._emit(f"subl3 {quotient},{left},{dest}")
        self._free_reg(quotient)
        self._free_reg(left)
        self._free_reg(right)
        return dest

    def _unsigned_div(self, left: str, right: str) -> str:
        return self._library_call("_udiv", left, right)

    def _library_call(self, callee: str, left: str, right: str) -> str:
        self._emit(f"pushl {right}")
        self._emit(f"pushl {left}")
        self._emit(f"calls $2,{callee}")
        self._free_reg(left)
        self._free_reg(right)
        dest = self._alloc(avoid=("r0",))
        self._emit(f"movl r0,{dest}")
        return dest

    def _and(self, node: Node) -> str:
        left, right = node.kids
        suffix = node.ty.suffix
        if left.op is Op.CONST:
            other = self._expr(right, want=node.ty)
            dest = self._alloc()
            self._emit(f"bic{suffix}3 ${~left.value},{other},{dest}")
            self._free_reg(other)
            return dest
        l_text = self._expr(left, want=node.ty)
        r_text = self._expr(right, want=node.ty)
        mask = self._alloc()
        self._emit(f"mcom{suffix} {r_text},{mask}")
        dest = self._alloc()
        self._emit(f"bic{suffix}3 {mask},{l_text},{dest}")
        self._free_reg(mask)
        self._free_reg(l_text)
        self._free_reg(r_text)
        return dest

    # ----------------------------------------------------------- operands
    def _operand_if_addressable(self, node: Node) -> Optional[str]:
        shape = node_shape(node)
        if Shape.SAREG in shape or Shape.SNAME in shape or Shape.SCON in shape:
            return self._operand(node)
        if Shape.SOREG in shape:
            return self._operand(node)
        return None

    def _operand(self, node: Node) -> str:
        op = node.op
        if op is Op.REG:
            register = str(node.value)
            if register in self._reserved:
                self._reserved[register] -= 1
                if self._reserved[register] <= 0:
                    self._pending_release.append(register)
            return register
        if op is Op.DREG:
            return str(node.value)
        if op is Op.NAME:
            return f"_{node.value}"
        if op is Op.TEMP:
            return str(node.value)
        if op is Op.CONST:
            return f"${node.value}"
        if op is Op.ADDROF and node.kids[0].op is Op.NAME:
            return f"$_{node.kids[0].value}"
        if op is Op.INDIR:
            address = node.kids[0]
            if address.op in (Op.REG, Op.DREG):
                return f"({address.value})"
            if address.op is Op.PLUS:
                left, right = address.kids
                if left.op is Op.CONST and right.op in (Op.REG, Op.DREG):
                    return f"{left.value}({right.value})"
                if right.op is Op.CONST and left.op in (Op.REG, Op.DREG):
                    return f"{right.value}({left.value})"
        raise PccError(f"not addressable: {node.op.name}")

    def _lvalue(self, node: Node) -> str:
        if node.op in (Op.NAME, Op.TEMP, Op.REG, Op.DREG):
            return self._operand(node)
        if node.op is Op.INDIR:
            text = self._operand_if_addressable(node)
            if text is not None:
                return text
            address = self._expr(node.kids[0])
            register = self._to_register(address, MachineType.LONG)
            return f"({register})"
        raise PccError(f"not an lvalue: {node.op.name}")

    def _to_register(self, operand: str, ty: MachineType) -> str:
        if operand in self.machine.allocatable or operand in self.machine.dedicated:
            return operand
        register = self._alloc()
        self._emit(f"mov{ty.suffix} {operand},{register}")
        self._free_reg(operand)
        return register

    def _widen(self, operand: str, src: MachineType, dst: MachineType) -> str:
        register = self._alloc()
        if not src.signed:
            movz = {(1, 2): "movzbw", (1, 4): "movzbl", (2, 4): "movzwl"}
            mnemonic = movz.get((src.size, dst.size))
            if mnemonic:
                self._emit(f"{mnemonic} {operand},{register}")
                self._free_reg(operand)
                return register
        self._emit(f"cvt{src.suffix}{dst.suffix} {operand},{register}")
        self._free_reg(operand)
        return register


def pcc_compile(forest: Forest, machine: VaxMachine = VAX) -> PccResult:
    """Compile one routine with the PCC-style baseline."""
    return PccCodeGenerator(machine).compile(forest)
