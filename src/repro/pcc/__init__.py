"""The PCC-style baseline code generator (the paper's comparator)."""

from .codegen import PccCodeGenerator, PccError, PccResult, pcc_compile
from .shapes import SEVAL, Shape, is_addressable, matches, node_shape

__all__ = [
    "PccCodeGenerator", "PccResult", "PccError", "pcc_compile",
    "Shape", "SEVAL", "node_shape", "matches", "is_addressable",
]
