int f0(int p0, int p1)
{
    register int i;
    int j;
    int x;
    int y;
    int z;
    char c;
    unsigned int u;
    x = p0;
    y = p1;
    u = p0;
    u = (u >> 2);
    {
        {
            if ((u <= p0))
            {
                (y++);
            }
        }
        x *= p0;
    }
    return (x + y);
}

int f2(int p0, int p1)
{
    register int i;
    int j;
    int x;
    int y;
    int z;
    char c;
    unsigned int u;
    y = p1;
    {
        for (j = 0; (j < 7); (j++))
        {
            y = f0(y, 67);
        }
    }
    return y;
}
