int f0(int p0, int p1)
{
    int y;
    int z;
    z = (((0 ? 6 : p1) * ((-22) & y)) + ((y | (0 ? z : 4)) ^ ((0 ? 9 : z) + 35)));
    return 0;
}
